#include "relational/table.h"

#include <cassert>
#include <utility>

#include "common/string_util.h"

namespace aspect {

#ifndef NDEBUG
namespace {

/// Debug scope asserting that no two threads mutate one table's row
/// structure concurrently (the write-lease invariant of the shared-
/// database parallel pass: a table's row structure has at most one
/// lease holder per group).
class StructureMutationScope {
 public:
  explicit StructureMutationScope(std::atomic<int>* depth) : depth_(depth) {
    const int prev = depth_->fetch_add(1, std::memory_order_acq_rel);
    assert(prev == 0 &&
           "concurrent row-structure mutation: two parallel tasks hold a "
           "write lease on the same table");
    (void)prev;
  }
  ~StructureMutationScope() {
    depth_->fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  std::atomic<int>* depth_;
};

}  // namespace
#define ASPECT_STRUCTURE_MUTATION_SCOPE() \
  StructureMutationScope structure_scope(&structure_mutators_.depth)
#else
#define ASPECT_STRUCTURE_MUTATION_SCOPE() \
  do {                                    \
  } while (false)
#endif

RowBlock::RowBlock(const TableSpec& spec) {
  cols_.reserve(spec.columns.size());
  for (const ColumnSpec& c : spec.columns) {
    cols_.emplace_back(c.name, c.type, c.ref_table);
  }
}

void RowBlock::Reserve(int64_t n) {
  for (Column& c : cols_) c.Reserve(n);
}

Status RowBlock::PushRow(const std::vector<Value>& values) {
  if (values.size() != cols_.size()) {
    return Status::Invalid(StrFormat(
        "RowBlock: push with %zu values, expected %zu columns",
        values.size(), cols_.size()));
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    if (!cols_[c].Accepts(values[c])) {
      return Status::Invalid(StrFormat(
          "RowBlock: value %zu has wrong type for column '%s'", c,
          cols_[c].name().c_str()));
    }
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    ASPECT_RETURN_NOT_OK(cols_[c].Append(values[c]));
  }
  ++rows_;
  return Status::OK();
}

Table::Table(const TableSpec& spec) : spec_(spec) {
  columns_.reserve(spec_.columns.size());
  for (const ColumnSpec& c : spec_.columns) {
    columns_.emplace_back(c.name, c.type, c.ref_table);
  }
}

Result<TupleId> Table::Append(const std::vector<Value>& values) {
  if (static_cast<int>(values.size()) != num_columns()) {
    return Status::Invalid(StrFormat(
        "table '%s': append with %zu values, expected %d columns",
        name().c_str(), values.size(), num_columns()));
  }
  // Type-check every value before growing any column, so a mismatch on
  // a later column cannot leave the columns ragged.
  for (int c = 0; c < num_columns(); ++c) {
    if (!columns_[static_cast<size_t>(c)].Accepts(
            values[static_cast<size_t>(c)])) {
      return Status::Invalid(StrFormat(
          "table '%s': append value %d has wrong type for column '%s'",
          name().c_str(), c,
          columns_[static_cast<size_t>(c)].name().c_str()));
    }
  }
  analysis::ProbeWrite(probe_table_, analysis::kProbeRowStructure);
  ASPECT_STRUCTURE_MUTATION_SCOPE();
  for (int c = 0; c < num_columns(); ++c) {
    ASPECT_RETURN_NOT_OK(columns_[static_cast<size_t>(c)].Append(
        values[static_cast<size_t>(c)]));
  }
  live_.push_back(1);
  ++num_live_;
  return static_cast<int64_t>(live_.size()) - 1;
}

Status Table::AppendRows(RowBlock&& block) {
  if (block.num_columns() != num_columns()) {
    return Status::Invalid(StrFormat(
        "table '%s': AppendRows block has %d columns, expected %d",
        name().c_str(), block.num_columns(), num_columns()));
  }
  const int64_t rows = block.num_rows();
  if (rows == 0) return Status::OK();
  analysis::ProbeWrite(probe_table_, analysis::kProbeRowStructure);
  ASPECT_STRUCTURE_MUTATION_SCOPE();
  for (int c = 0; c < num_columns(); ++c) {
    ASPECT_RETURN_NOT_OK(columns_[static_cast<size_t>(c)].AppendBatch(
        std::move(block.cols_[static_cast<size_t>(c)])));
  }
  live_.insert(live_.end(), static_cast<size_t>(rows), uint8_t{1});
  num_live_ += rows;
  return Status::OK();
}

void Table::Reserve(int64_t n) {
  live_.reserve(static_cast<size_t>(n));
  for (Column& c : columns_) c.Reserve(n);
}

void Table::CopyColumnsFrom(const Table& src, const std::set<int>& cols) {
  live_ = src.live_;
  num_live_ = src.num_live_;
  for (int i = 0; i < num_columns(); ++i) {
    if (cols.count(i) > 0) {
      columns_[static_cast<size_t>(i)] = src.columns_[static_cast<size_t>(i)];
    } else {
      columns_[static_cast<size_t>(i)].ResizeEmpty(src.NumSlots());
    }
  }
}

Status Table::Delete(TupleId t) {
  if (!IsLive(t)) {
    return Status::KeyError(
        StrFormat("table '%s': tuple %lld is not live", name().c_str(),
                  static_cast<long long>(t)));
  }
  analysis::ProbeWrite(probe_table_, analysis::kProbeRowStructure);
  ASPECT_STRUCTURE_MUTATION_SCOPE();
  live_[static_cast<size_t>(t)] = 0;
  --num_live_;
  return Status::OK();
}

Status Table::Undelete(TupleId t) {
  if (t < 0 || t >= NumSlots()) {
    return Status::KeyError(
        StrFormat("table '%s': tuple %lld out of range", name().c_str(),
                  static_cast<long long>(t)));
  }
  if (live_[static_cast<size_t>(t)]) {
    return Status::Invalid(
        StrFormat("table '%s': tuple %lld is not tombstoned",
                  name().c_str(), static_cast<long long>(t)));
  }
  analysis::ProbeWrite(probe_table_, analysis::kProbeRowStructure);
  ASPECT_STRUCTURE_MUTATION_SCOPE();
  live_[static_cast<size_t>(t)] = 1;
  ++num_live_;
  return Status::OK();
}

Status Table::PopBack() {
  if (NumSlots() == 0) {
    return Status::Invalid(
        StrFormat("table '%s': PopBack on empty table", name().c_str()));
  }
  analysis::ProbeWrite(probe_table_, analysis::kProbeRowStructure);
  ASPECT_STRUCTURE_MUTATION_SCOPE();
  if (live_.back()) --num_live_;
  live_.pop_back();
  for (Column& c : columns_) c.PopBack();
  return Status::OK();
}

std::vector<TupleId> Table::LiveTuples() const {
  std::vector<TupleId> out;
  out.reserve(static_cast<size_t>(num_live_));
  ForEachLive([&](TupleId t) { out.push_back(t); });
  return out;
}

std::vector<Value> Table::GetRow(TupleId t) const {
  std::vector<Value> row;
  row.reserve(static_cast<size_t>(num_columns()));
  for (int c = 0; c < num_columns(); ++c) {
    row.push_back(columns_[static_cast<size_t>(c)].Get(t));
  }
  return row;
}

}  // namespace aspect
