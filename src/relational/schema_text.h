// A small line-oriented text format for schemas, so users can describe
// their own datasets without writing C++ (used by the aspect_cli
// example). Grammar (one directive per line, '#' starts a comment):
//
//   dataset <name>
//   user <table>                      # the sonSchema user table
//   table <name>
//     col <name> int64|double|string
//     col <name> fk <table>
//   response <resp_table> <post_fk_col> <responder_col>
//            <post_table> <author_col>
//
// Columns attach to the most recent `table`. Response directives name
// columns, not indexes.
#pragma once

#include <string>

#include "common/result.h"
#include "relational/schema.h"

namespace aspect {

/// Parses the text format; the result is validated.
Result<Schema> ParseSchemaText(const std::string& text);

/// Renders a schema back to the text format (round-trips through
/// ParseSchemaText).
std::string FormatSchemaText(const Schema& schema);

/// Reads and parses a schema file.
Result<Schema> LoadSchemaFile(const std::string& path);

}  // namespace aspect
