// Sharded bulk row generation (DESIGN.md §12).
//
// GenerateRowsSharded is the one driver behind every parallel stage-1
// producer (synthetic generators, size scalers, samplers): it splits a
// target row count into fixed-grain shards (common/sharding.h), forks a
// per-shard RNG stream from a shared const parent (Rng::Fork(label) with
// the shard index as the label), fills one RowBlock per shard — on the
// caller's thread or a ThreadPool — and splices the blocks onto the
// destination table in shard order. Because the shard decomposition and
// the stream tree depend only on the row count, the produced bytes are
// identical at every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "relational/table.h"
#include "relational/value.h"

namespace aspect {

class ThreadPool;

/// Fills one row of a shard. `row` is the row's index within the whole
/// generated range [0, rows) — NOT the destination tuple id; producers
/// that need the final id add the table's pre-generation slot count.
/// `rng` is the shard's private stream; `out` arrives sized to the
/// table's column count with null Values and must be fully assigned.
using RowFn = std::function<Status(int64_t row, Rng* rng,
                                   std::vector<Value>* out)>;

/// Generates `rows` rows into `dst`. `stream` is the producer's
/// per-table stream root: shard i draws from stream.Fork(i). `pool`
/// null (or a single shard) runs inline. On error the destination
/// table is left untouched and the first failure in shard order is
/// returned (deterministic regardless of execution order).
Status GenerateRowsSharded(Table* dst, int64_t rows, const Rng& stream,
                           ThreadPool* pool, const RowFn& make_row);

}  // namespace aspect
