// CSV import/export so users can bring their own empirical datasets
// (the paper's input D) and inspect scaled outputs.
//
// Layout: one file per table named <table>.csv inside a directory, with
// a header row "tuple_id,<col>,...". Foreign keys are written as the
// referenced tuple id. Tombstoned tuples are skipped on export; on
// import, tuple ids are re-densified and FK values remapped.
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "relational/database.h"

namespace aspect {

/// Writes every table of `db` to `<dir>/<table>.csv`.
Status ExportCsv(const Database& db, const std::string& dir);

/// Reads a database with the given schema from `<dir>/<table>.csv`
/// files previously produced by ExportCsv (or hand-authored).
Result<std::unique_ptr<Database>> ImportCsv(const Schema& schema,
                                            const std::string& dir);

}  // namespace aspect
