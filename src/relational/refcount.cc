#include "relational/refcount.h"

#include <cassert>

namespace aspect {

RefCounter::RefCounter(Database* db) : db_(db) {
  counts_.resize(static_cast<size_t>(db_->num_tables()));
  for (int ti = 0; ti < db_->num_tables(); ++ti) {
    counts_[static_cast<size_t>(ti)].assign(
        static_cast<size_t>(db_->table(ti).NumSlots()), 0);
  }
  for (int ti = 0; ti < db_->num_tables(); ++ti) {
    const Table& t = db_->table(ti);
    for (int ci = 0; ci < t.num_columns(); ++ci) {
      const Column& col = t.column(ci);
      if (!col.is_foreign_key()) continue;
      const int pi = db_->schema().TableIndex(col.ref_table());
      auto& counts = counts_[static_cast<size_t>(pi)];
      t.ForEachLive([&](TupleId tid) {
        if (col.IsValue(tid)) {
          ++counts[static_cast<size_t>(col.GetInt(tid))];
        }
      });
    }
  }
  db_->AddListener(this);
}

RefCounter::~RefCounter() {
  if (db_ != nullptr) db_->RemoveListener(this);
}

void RefCounter::Rebase(Database* db) {
  if (db == db_) return;
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
}

int64_t RefCounter::Count(int table, TupleId t) const {
  const auto& counts = counts_[static_cast<size_t>(table)];
  if (t < 0 || t >= static_cast<TupleId>(counts.size())) return 0;
  return counts[static_cast<size_t>(t)];
}

void RefCounter::Adjust(int table, int col, const Value& v, int64_t delta) {
  if (v.is_null()) return;
  const Column& c = db_->table(table).column(col);
  if (!c.is_foreign_key()) return;
  const int pi = db_->schema().TableIndex(c.ref_table());
  auto& counts = counts_[static_cast<size_t>(pi)];
  const size_t slot = static_cast<size_t>(v.int64());
  if (slot >= counts.size()) counts.resize(slot + 1, 0);
  counts[slot] += delta;
  assert(counts[slot] >= 0);
}

void RefCounter::OnApplied(const Modification& mod,
                           const std::vector<Value>& old_values,
                           TupleId new_tuple) {
  const int table = db_->schema().TableIndex(mod.table);
  if (table < 0) return;
  switch (mod.kind) {
    case OpKind::kDeleteValues:
      for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          Adjust(table, mod.cols[cj],
                 old_values[tj * mod.cols.size() + cj], -1);
        }
      }
      break;
    case OpKind::kInsertValues:
      for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          Adjust(table, mod.cols[cj], mod.values[cj], +1);
        }
      }
      break;
    case OpKind::kReplaceValues:
      for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          Adjust(table, mod.cols[cj],
                 old_values[tj * mod.cols.size() + cj], -1);
          Adjust(table, mod.cols[cj], mod.values[cj], +1);
        }
      }
      break;
    case OpKind::kInsertTuple: {
      // Ensure the new slot exists in this table's own counts.
      auto& counts = counts_[static_cast<size_t>(table)];
      if (new_tuple >= static_cast<TupleId>(counts.size())) {
        counts.resize(static_cast<size_t>(new_tuple) + 1, 0);
      }
      for (size_t c = 0; c < mod.values.size(); ++c) {
        Adjust(table, static_cast<int>(c), mod.values[c], +1);
      }
      break;
    }
    case OpKind::kDeleteTuple:
      for (size_t c = 0; c < old_values.size(); ++c) {
        Adjust(table, static_cast<int>(c), old_values[c], -1);
      }
      break;
  }
}

}  // namespace aspect
