#include "relational/csv.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace aspect {
namespace {

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    out += c;
  }
  out += "\"";
  return out;
}

// Splits one CSV line honouring quoted fields.
std::vector<std::string> CsvSplit(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

Result<Value> ParseValue(const std::string& field, ColumnType type) {
  if (field.empty()) return Value::Null();
  switch (type) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(field.c_str(), &end, 10);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::IoError(StrFormat("bad int64 '%s'", field.c_str()));
      }
      return Value(static_cast<int64_t>(v));
    }
    case ColumnType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(field.c_str(), &end);
      if (errno != 0 || end == field.c_str() || *end != '\0') {
        return Status::IoError(StrFormat("bad double '%s'", field.c_str()));
      }
      return Value(v);
    }
    case ColumnType::kString:
      return Value(field);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Status ExportCsv(const Database& db, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create '%s': %s", dir.c_str(),
                                     ec.message().c_str()));
  }
  for (int ti = 0; ti < db.num_tables(); ++ti) {
    const Table& t = db.table(ti);
    const std::string path = dir + "/" + t.name() + ".csv";
    std::ofstream out(path);
    if (!out) {
      return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
    }
    out << "tuple_id";
    for (int ci = 0; ci < t.num_columns(); ++ci) {
      out << "," << CsvEscape(t.column(ci).name());
    }
    out << "\n";
    t.ForEachLive([&](TupleId tid) {
      out << tid;
      for (int ci = 0; ci < t.num_columns(); ++ci) {
        out << "," << CsvEscape(t.column(ci).Get(tid).ToString());
      }
      out << "\n";
    });
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> ImportCsv(const Schema& schema,
                                            const std::string& dir) {
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Create(schema));
  // Pass 1: read rows and record, per table, the original tuple ids so
  // FK values can be remapped onto densified ids.
  struct RawTable {
    std::vector<int64_t> original_ids;
    std::vector<std::vector<Value>> rows;
  };
  std::map<std::string, RawTable> raw;
  std::map<std::string, std::map<int64_t, TupleId>> id_map;
  for (const TableSpec& spec : schema.tables) {
    const std::string path = dir + "/" + spec.name + ".csv";
    std::ifstream in(path);
    if (!in) {
      return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
    }
    std::string line;
    if (!std::getline(in, line)) {
      return Status::IoError(StrFormat("'%s' has no header", path.c_str()));
    }
    RawTable& rt = raw[spec.name];
    auto& ids = id_map[spec.name];
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const std::vector<std::string> fields = CsvSplit(line);
      if (fields.size() != spec.columns.size() + 1) {
        return Status::IoError(
            StrFormat("'%s': row with %zu fields, expected %zu",
                      path.c_str(), fields.size(), spec.columns.size() + 1));
      }
      ASPECT_ASSIGN_OR_RETURN(Value idv,
                              ParseValue(fields[0], ColumnType::kInt64));
      std::vector<Value> row;
      for (size_t ci = 0; ci < spec.columns.size(); ++ci) {
        ASPECT_ASSIGN_OR_RETURN(
            Value v, ParseValue(fields[ci + 1], spec.columns[ci].type));
        row.push_back(std::move(v));
      }
      ids[idv.int64()] = static_cast<TupleId>(rt.rows.size());
      rt.original_ids.push_back(idv.int64());
      rt.rows.push_back(std::move(row));
    }
  }
  // Pass 2: remap FK values and append.
  for (const TableSpec& spec : schema.tables) {
    RawTable& rt = raw[spec.name];
    for (std::vector<Value>& row : rt.rows) {
      for (size_t ci = 0; ci < spec.columns.size(); ++ci) {
        const ColumnSpec& cs = spec.columns[ci];
        if (cs.type != ColumnType::kForeignKey || row[ci].is_null()) {
          continue;
        }
        const auto& ids = id_map[cs.ref_table];
        const auto it = ids.find(row[ci].int64());
        if (it == ids.end()) {
          return Status::IoError(StrFormat(
              "'%s.%s': dangling foreign key %lld", spec.name.c_str(),
              cs.name.c_str(),
              static_cast<long long>(row[ci].int64())));
        }
        row[ci] = Value(static_cast<int64_t>(it->second));
      }
      ASPECT_RETURN_NOT_OK(
          // aspect-lint: framework-write -- initial load, no lease yet
          db->FindTable(spec.name)->Append(row).status());
    }
  }
  return db;
}

}  // namespace aspect
