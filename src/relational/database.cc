#include "relational/database.h"

#include <algorithm>

#include "analysis/probe.h"
#include "common/string_util.h"

namespace aspect {
namespace {

/// Emits the semantic write footprint of an applied modification for
/// the scope-conformance analyzer: cell operations write their (table,
/// column) atoms; tuple insert/delete writes the table's row structure.
/// The physical per-column probes inside ApplyOne are suppressed (a
/// tuple insert physically appends to every column, but semantically
/// the tool changed the row set, not other tools' cell values — the
/// directional disturbance rules of analysis/access_scope.h account for
/// the new rows' cells), so this is the only write record an applied
/// modification leaves.
void ProbeModification(const Schema& schema, const Modification& mod) {
  if (!analysis::ProbeInstalled()) return;
  const int t = schema.TableIndex(mod.table);
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      // Per-tuple attribution: the interval footprint and the row-range
      // write leases need to know which rows each cell atom touched.
      for (const int c : mod.cols) {
        for (const TupleId tuple : mod.tuples) {
          analysis::ProbeWrite(t, c, tuple);
        }
      }
      break;
    case OpKind::kInsertTuple:
    case OpKind::kDeleteTuple:
      analysis::ProbeWrite(t, analysis::kProbeRowStructure);
      break;
  }
}

/// The calling thread's installed listener route (null = notify the
/// database's registered listeners). Thread-local by construction, so
/// shared-mode tasks route without synchronisation.
thread_local const std::vector<ModificationListener*>* tls_route = nullptr;

}  // namespace

Database::ScopedListenerRoute::ScopedListenerRoute(
    const std::vector<ModificationListener*>* route)
    : prev_(tls_route) {
  tls_route = route;
}

Database::ScopedListenerRoute::~ScopedListenerRoute() { tls_route = prev_; }

const char* OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kDeleteValues:
      return "deleteValues";
    case OpKind::kInsertValues:
      return "insertValues";
    case OpKind::kReplaceValues:
      return "replaceValues";
    case OpKind::kInsertTuple:
      return "insertTuple";
    case OpKind::kDeleteTuple:
      return "deleteTuple";
  }
  return "?";
}

Modification Modification::DeleteValues(std::string table,
                                        std::vector<TupleId> tuples,
                                        std::vector<int> cols) {
  Modification m;
  m.kind = OpKind::kDeleteValues;
  m.table = std::move(table);
  m.tuples = std::move(tuples);
  m.cols = std::move(cols);
  return m;
}

Modification Modification::InsertValues(std::string table,
                                        std::vector<TupleId> tuples,
                                        std::vector<int> cols,
                                        std::vector<Value> values) {
  Modification m;
  m.kind = OpKind::kInsertValues;
  m.table = std::move(table);
  m.tuples = std::move(tuples);
  m.cols = std::move(cols);
  m.values = std::move(values);
  return m;
}

Modification Modification::ReplaceValues(std::string table,
                                         std::vector<TupleId> tuples,
                                         std::vector<int> cols,
                                         std::vector<Value> values) {
  Modification m;
  m.kind = OpKind::kReplaceValues;
  m.table = std::move(table);
  m.tuples = std::move(tuples);
  m.cols = std::move(cols);
  m.values = std::move(values);
  return m;
}

Modification Modification::InsertTuple(std::string table,
                                       std::vector<Value> row) {
  Modification m;
  m.kind = OpKind::kInsertTuple;
  m.table = std::move(table);
  m.values = std::move(row);
  return m;
}

Modification Modification::DeleteTuple(std::string table, TupleId tuple) {
  Modification m;
  m.kind = OpKind::kDeleteTuple;
  m.table = std::move(table);
  m.tuples = {tuple};
  return m;
}

Database::Database(Schema schema) : schema_(std::move(schema)) {
  tables_.reserve(schema_.tables.size());
  for (const TableSpec& spec : schema_.tables) {
    tables_.push_back(std::make_unique<Table>(spec));
    tables_.back()->SetProbeTable(static_cast<int>(tables_.size()) - 1);
  }
}

Result<std::unique_ptr<Database>> Database::Create(const Schema& schema) {
  ASPECT_RETURN_NOT_OK(schema.Validate());
  return std::unique_ptr<Database>(new Database(schema));
}

const Table* Database::FindTable(const std::string& name) const {
  const int i = schema_.TableIndex(name);
  return i < 0 ? nullptr : tables_[static_cast<size_t>(i)].get();
}

Table* Database::FindTable(const std::string& name) {
  const int i = schema_.TableIndex(name);
  return i < 0 ? nullptr : tables_[static_cast<size_t>(i)].get();
}

int64_t Database::TotalTuples() const {
  int64_t total = 0;
  for (const auto& t : tables_) total += t->NumTuples();
  return total;
}

void Database::AddListener(ModificationListener* listener) {
  listeners_.push_back(listener);
}

void Database::RemoveListener(ModificationListener* listener) {
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

Status Database::ApplyCellOp(const Modification& mod, Table* t,
                             std::vector<Value>* old_values) {
  // Validate indices and cell-state preconditions first so the
  // operation is all-or-nothing.
  for (const int c : mod.cols) {
    if (c < 0 || c >= t->num_columns()) {
      return Status::OutOfRange(StrFormat("table '%s': column %d",
                                          mod.table.c_str(), c));
    }
  }
  if (mod.kind != OpKind::kDeleteValues) {
    if (mod.values.size() != mod.cols.size()) {
      return Status::Invalid(
          StrFormat("%s on '%s': %zu values for %zu columns",
                    OpKindToString(mod.kind), mod.table.c_str(),
                    mod.values.size(), mod.cols.size()));
    }
    // Type-check up front so the operation stays all-or-nothing.
    for (size_t j = 0; j < mod.cols.size(); ++j) {
      if (!t->column(mod.cols[j]).Accepts(mod.values[j])) {
        return Status::Invalid(StrFormat(
            "%s on '%s': value %zu has wrong type for column %d",
            OpKindToString(mod.kind), mod.table.c_str(), j, mod.cols[j]));
      }
    }
  }
  for (const TupleId tid : mod.tuples) {
    if (!t->IsLive(tid)) {
      return Status::KeyError(StrFormat("table '%s': tuple %lld not live",
                                        mod.table.c_str(),
                                        static_cast<long long>(tid)));
    }
    for (size_t j = 0; j < mod.cols.size(); ++j) {
      const Column& col = t->column(mod.cols[j]);
      const bool empty = col.IsEmpty(tid);
      switch (mod.kind) {
        case OpKind::kDeleteValues:
          if (empty) {
            return Status::Invalid(StrFormat(
                "deleteValues on '%s': cell (%lld, %d) already empty",
                mod.table.c_str(), static_cast<long long>(tid),
                mod.cols[j]));
          }
          break;
        case OpKind::kInsertValues:
          if (!empty) {
            return Status::Invalid(StrFormat(
                "insertValues on '%s': cell (%lld, %d) is not empty",
                mod.table.c_str(), static_cast<long long>(tid),
                mod.cols[j]));
          }
          break;
        case OpKind::kReplaceValues:
          if (empty) {
            return Status::Invalid(StrFormat(
                "replaceValues on '%s': cell (%lld, %d) is empty",
                mod.table.c_str(), static_cast<long long>(tid),
                mod.cols[j]));
          }
          break;
        default:
          return Status::Internal("not a cell op");
      }
    }
  }
  // Capture pre-images, then apply. Writes go column-major: `values`
  // is broadcast (values[j] lands in cols[j] for every tuple), so one
  // type dispatch per column covers the whole tuple span.
  old_values->reserve(mod.tuples.size() * mod.cols.size());
  for (const TupleId tid : mod.tuples) {
    for (const int c : mod.cols) {
      old_values->push_back(t->column(c).Get(tid));
    }
  }
  for (size_t j = 0; j < mod.cols.size(); ++j) {
    Column& col = t->column(mod.cols[j]);
    if (mod.kind == OpKind::kDeleteValues) {
      for (const TupleId tid : mod.tuples) col.Erase(tid);
    } else {
      ASPECT_RETURN_NOT_OK(col.SetBroadcast(mod.tuples, mod.values[j]));
    }
  }
  return Status::OK();
}

Status Database::ApplyOne(const Modification& mod,
                          std::vector<Value>* old_values,
                          TupleId* inserted) {
  Table* t = FindTable(mod.table);
  if (t == nullptr) {
    return Status::KeyError(StrFormat("no table '%s'", mod.table.c_str()));
  }
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      ASPECT_RETURN_NOT_OK(ApplyCellOp(mod, t, old_values));
      break;
    case OpKind::kInsertTuple: {
      ASPECT_ASSIGN_OR_RETURN(*inserted, t->Append(mod.values));
      break;
    }
    case OpKind::kDeleteTuple: {
      if (mod.tuples.size() != 1) {
        return Status::Invalid("deleteTuple expects exactly one tuple id");
      }
      if (!t->IsLive(mod.tuples[0])) {
        return Status::KeyError(
            StrFormat("table '%s': tuple %lld not live", mod.table.c_str(),
                      static_cast<long long>(mod.tuples[0])));
      }
      *old_values = t->GetRow(mod.tuples[0]);
      ASPECT_RETURN_NOT_OK(t->Delete(mod.tuples[0]));
      break;
    }
  }
  return Status::OK();
}

Status Database::Apply(const Modification& mod, TupleId* new_tuple) {
  std::vector<Value> old_values;
  TupleId inserted = kInvalidTuple;
  {
    // The probes inside ApplyOne (pre-image capture, physical column
    // writes) and the listeners' statistics reads are framework
    // machinery, not the proposing tool's own access; the semantic
    // footprint is emitted below instead.
    analysis::ScopedProbeSuppress suppress;
    ASPECT_RETURN_NOT_OK(ApplyOne(mod, &old_values, &inserted));
    if (new_tuple != nullptr) *new_tuple = inserted;
    const std::vector<ModificationListener*>& targets =
        tls_route != nullptr ? *tls_route : listeners_;
    for (ModificationListener* l : targets) {
      l->OnApplied(mod, old_values, inserted);
    }
  }
  ProbeModification(schema_, mod);
  return Status::OK();
}

Status Database::ApplyBatch(std::span<const Modification> mods,
                            std::vector<TupleId>* new_tuples) {
  if (new_tuples != nullptr) {
    new_tuples->assign(mods.size(), kInvalidTuple);
  }
  if (mods.empty()) return Status::OK();
  std::vector<std::vector<Value>> old_values(mods.size());
  std::vector<TupleId> inserted(mods.size(), kInvalidTuple);
  {
    // Same attribution rule as Apply: the physical machinery probes
    // are suppressed and the semantic footprint is emitted below, only
    // for a batch that actually applied.
    analysis::ScopedProbeSuppress suppress;
    size_t done = 0;
    Status st = Status::OK();
    for (; done < mods.size(); ++done) {
      st = ApplyOne(mods[done], &old_values[done], &inserted[done]);
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      // All-or-nothing: revert the applied prefix in reverse order (so
      // a kInsertTuple always reverts the table's last slot). The
      // failing modification itself needs no revert: ApplyOne is
      // all-or-nothing per modification — cell ops and Table::Append
      // both validate types and cell states before writing anything.
      for (size_t i = done; i-- > 0;) {
        const Status undo = Undo(mods[i], old_values[i], inserted[i]);
        if (!undo.ok()) return undo;  // state corrupt; surface loudly
      }
      return st;
    }
    if (new_tuples != nullptr) *new_tuples = inserted;
    const std::vector<ModificationListener*>& targets =
        tls_route != nullptr ? *tls_route : listeners_;
    for (ModificationListener* l : targets) {
      l->OnAppliedBatch(mods, old_values, inserted);
    }
  }
  for (const Modification& mod : mods) ProbeModification(schema_, mod);
  return Status::OK();
}

void ModificationListener::OnAppliedBatch(
    std::span<const Modification> mods,
    std::span<const std::vector<Value>> old_values,
    std::span<const TupleId> new_tuples) {
  for (size_t i = 0; i < mods.size(); ++i) {
    OnApplied(mods[i], old_values[i], new_tuples[i]);
  }
}

Status Database::Undo(const Modification& mod,
                      const std::vector<Value>& old_values,
                      TupleId new_tuple) {
  // Reverting is framework machinery (rollback, batch-failure repair):
  // it must not be attributed to whatever tool's probe is installed.
  analysis::ScopedProbeSuppress suppress;
  Table* t = FindTable(mod.table);
  if (t == nullptr) {
    return Status::KeyError(StrFormat("no table '%s'", mod.table.c_str()));
  }
  switch (mod.kind) {
    case OpKind::kInsertValues:
      // The cells were kEmpty before the insert: erase them again.
      for (const TupleId tid : mod.tuples) {
        for (const int c : mod.cols) {
          t->column(c).Erase(tid);
        }
      }
      return Status::OK();
    case OpKind::kDeleteValues:
    case OpKind::kReplaceValues: {
      // Restore the captured pre-images (row-major tuples x cols). The
      // cells were non-empty before, so a null pre-image means kNull.
      if (old_values.size() != mod.tuples.size() * mod.cols.size()) {
        return Status::Internal(StrFormat(
            "undo %s on '%s': %zu pre-images for %zu cells",
            OpKindToString(mod.kind), mod.table.c_str(), old_values.size(),
            mod.tuples.size() * mod.cols.size()));
      }
      size_t k = 0;
      for (const TupleId tid : mod.tuples) {
        for (const int c : mod.cols) {
          ASPECT_RETURN_NOT_OK(t->column(c).Set(tid, old_values[k]));
          ++k;
        }
      }
      return Status::OK();
    }
    case OpKind::kInsertTuple:
      if (new_tuple != t->NumSlots() - 1) {
        return Status::Internal(StrFormat(
            "undo insertTuple on '%s': tuple %lld is not the last slot "
            "%lld (entries must be undone in reverse order)",
            mod.table.c_str(), static_cast<long long>(new_tuple),
            static_cast<long long>(t->NumSlots() - 1)));
      }
      return t->PopBack();
    case OpKind::kDeleteTuple:
      // Delete only tombstones; the slot's values are still in place.
      return t->Undelete(mod.tuples[0]);
  }
  return Status::Internal("unknown modification kind");
}

Status Database::CopyContentFrom(const Database& other) {
  if (schema_.tables.size() != other.schema_.tables.size()) {
    return Status::Invalid("CopyContentFrom: schema mismatch");
  }
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i]->name() != other.tables_[i]->name()) {
      return Status::Invalid("CopyContentFrom: schema mismatch");
    }
    *tables_[i] = *other.tables_[i];
  }
  return Status::OK();
}

std::unique_ptr<Database> Database::Clone() const {
  std::unique_ptr<Database> copy(new Database(schema_));
  for (size_t i = 0; i < tables_.size(); ++i) {
    *copy->tables_[i] = *tables_[i];
  }
  return copy;
}

std::unique_ptr<Database> Database::CloneAtoms(
    const std::set<std::pair<int, int>>& atoms) const {
  std::unique_ptr<Database> copy(new Database(schema_));
  // Group the requested columns by table; a negative column index
  // requests the table whole.
  std::vector<std::set<int>> cols(tables_.size());
  std::vector<bool> whole(tables_.size(), false);
  std::vector<bool> requested(tables_.size(), false);
  for (const auto& [t, c] : atoms) {
    if (t < 0 || t >= static_cast<int>(tables_.size())) continue;
    requested[static_cast<size_t>(t)] = true;
    if (c >= 0) {
      cols[static_cast<size_t>(t)].insert(c);
    } else if (c != -2) {
      // -1 (kWholeTable, or legacy negative columns) copies the table
      // whole. -2 (kRowStructure) asks for the row skeleton only,
      // which CopyColumnsFrom carries for free: slot count and
      // tombstones are copied, columns stay kEmpty shells.
      whole[static_cast<size_t>(t)] = true;
    }
  }
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (!requested[i]) continue;
    if (whole[i]) {
      *copy->tables_[i] = *tables_[i];
    } else {
      copy->tables_[i]->CopyColumnsFrom(*tables_[i], cols[i]);
    }
  }
  return copy;
}

}  // namespace aspect
