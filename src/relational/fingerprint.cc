#include "relational/fingerprint.h"

#include <cstring>
#include <string>

namespace aspect {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashString(uint64_t* h, const std::string& s) {
  HashU64(h, s.size());
  HashBytes(h, s.data(), s.size());
}

}  // namespace

uint64_t ContentHash(const Database& db) {
  uint64_t h = kFnvOffset;
  HashU64(&h, static_cast<uint64_t>(db.num_tables()));
  for (int ti = 0; ti < db.num_tables(); ++ti) {
    const Table& t = db.table(ti);
    HashString(&h, t.name());
    const int64_t slots = t.NumSlots();
    HashU64(&h, static_cast<uint64_t>(slots));
    HashU64(&h, static_cast<uint64_t>(t.NumTuples()));
    for (int64_t row = 0; row < slots; ++row) {
      HashU64(&h, t.IsLive(row) ? 1 : 0);
      for (int c = 0; c < t.num_columns(); ++c) {
        const Column& col = t.column(c);
        const CellState state = col.state(row);
        HashU64(&h, static_cast<uint64_t>(state));
        if (state != CellState::kValue) continue;
        switch (col.type()) {
          case ColumnType::kInt64:
          case ColumnType::kForeignKey:
            HashU64(&h, static_cast<uint64_t>(col.GetInt(row)));
            break;
          case ColumnType::kDouble: {
            double d = col.GetDouble(row);
            uint64_t bits = 0;
            std::memcpy(&bits, &d, sizeof(bits));
            HashU64(&h, bits);
            break;
          }
          case ColumnType::kString:
            HashString(&h, col.GetString(row));
            break;
        }
      }
    }
  }
  return h;
}

}  // namespace aspect
