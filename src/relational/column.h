// Column: typed columnar storage with per-cell state.
//
// A cell is in one of three states:
//   - kValue: holds a value of the column's type;
//   - kNull:  an SQL NULL;
//   - kEmpty: temporarily erased by the ASPECT deleteValues operation and
//             awaiting re-fill by insertValues (Sec. III-D of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/probe.h"
#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace aspect {

/// Per-cell state marker (see file comment).
enum class CellState : uint8_t { kValue = 0, kNull = 1, kEmpty = 2 };

/// One column of a Table. Rows are addressed by dense row index; the
/// enclosing Table maps tuple ids onto row indexes (they coincide).
class Column {
 public:
  Column(std::string name, ColumnType type, std::string ref_table = "");

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  bool is_foreign_key() const { return type_ == ColumnType::kForeignKey; }
  /// Name of the referenced table; empty unless is_foreign_key().
  const std::string& ref_table() const { return ref_table_; }

  int64_t size() const { return static_cast<int64_t>(state_.size()); }

  /// Probe identity for the scope-conformance analyzer: the enclosing
  /// table's schema index and this column's index (analysis/probe.h).
  /// Unset ids (-1, the default) disable the probes; Table::SetProbeTable
  /// assigns them when the Database is built.
  void SetProbeId(int table, int column) {
    probe_table_ = table;
    probe_col_ = column;
  }

  CellState state(int64_t row) const {
    analysis::ProbeRead(probe_table_, probe_col_, row);
    return state_[static_cast<size_t>(row)];
  }
  bool IsValue(int64_t row) const { return state(row) == CellState::kValue; }
  bool IsEmpty(int64_t row) const { return state(row) == CellState::kEmpty; }
  bool IsNull(int64_t row) const { return state(row) == CellState::kNull; }

  /// Reads the cell as a dynamically typed Value (null/empty -> Null).
  Value Get(int64_t row) const;

  /// Fast paths for the hot types. Preconditions: matching type and a
  /// kValue cell state (checked only by assert).
  int64_t GetInt(int64_t row) const {
    analysis::ProbeRead(probe_table_, probe_col_, row);
    return ints_[static_cast<size_t>(row)];
  }
  double GetDouble(int64_t row) const {
    analysis::ProbeRead(probe_table_, probe_col_, row);
    return doubles_[static_cast<size_t>(row)];
  }
  const std::string& GetString(int64_t row) const {
    analysis::ProbeRead(probe_table_, probe_col_, row);
    return strings_[static_cast<size_t>(row)];
  }

  /// True when `v` can be stored in this column: null always, else the
  /// value's dynamic type must match the column type. Callers that
  /// write several columns check every value with this first so a late
  /// type mismatch cannot leave a row half-written.
  bool Accepts(const Value& v) const;

  /// Writes the cell; a null Value sets the kNull state. Returns
  /// Invalid if the value's dynamic type does not match the column.
  Status Set(int64_t row, const Value& v);

  /// Broadcast write: stores the same value into every listed row with
  /// a single type dispatch (the columnar fast path behind multi-tuple
  /// cell modifications). Returns Invalid on a type mismatch, in which
  /// case no row is written.
  Status SetBroadcast(const std::vector<int64_t>& rows, const Value& v);

  /// Pre-allocates capacity for `n` total rows.
  void Reserve(int64_t n);

  /// Grows the column to exactly `n` rows of kEmpty cells with
  /// default-initialized storage. Shell columns of a partial table
  /// clone (Database::CloneAtoms) use this so out-of-scope cells stay
  /// addressable without paying for a deep copy.
  void ResizeEmpty(int64_t n);

  /// Marks the cell kEmpty (ASPECT deleteValues semantics).
  void Erase(int64_t row);

  /// Appends one cell (growing the column by one row).
  Status Append(const Value& v);

  /// Removes the last row (undo of Append; requires size() > 0).
  void PopBack();

  /// Fast typed setters.
  void SetInt(int64_t row, int64_t v);
  void SetDouble(int64_t row, double v);

  /// Splices the entirety of `src` onto the end of this column — one
  /// vector concatenation per storage array instead of a per-cell
  /// dispatch. `src` is consumed (strings are moved). Returns Invalid
  /// on a column-type mismatch, in which case nothing is appended. The
  /// bulk columnar construction path (Table::AppendRows) is built on
  /// this; no per-cell probes fire (the rows did not exist before the
  /// splice, so there is no prior state to attribute).
  Status AppendBatch(Column&& src);

  /// Copies the cells of rows [lo, hi] (values and states) from `src`
  /// into this column. Types must match and both columns must span the
  /// range. The parallel pass's clone merge uses this when a task holds
  /// a row-range lease on the column: only its leased rows move back,
  /// so co-members of the group can merge disjoint ranges of the same
  /// column without clobbering each other.
  void CopyRowsFrom(const Column& src, int64_t lo, int64_t hi);

 private:
  std::string name_;
  ColumnType type_;
  std::string ref_table_;

  // Exactly one of these is populated, chosen by type_ (int64 and
  // foreign keys share ints_).
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<CellState> state_;

  // Probe identity (see SetProbeId); copied with the column so moved
  // storage keeps reporting the correct atom.
  int probe_table_ = -1;
  int probe_col_ = -1;
};

}  // namespace aspect
