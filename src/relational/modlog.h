// ModificationLog: records every modification applied to a database
// (with pre-images), so a tweaking run can be audited, summarized per
// table, or replayed onto another copy of the same starting database.
// The coordinator's rollback policy and the CLI's --report are built
// on it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "relational/database.h"

namespace aspect {

class ModificationLog : public ModificationListener {
 public:
  /// Starts recording `db` (registers as a listener).
  explicit ModificationLog(Database* db);
  ~ModificationLog() override;

  ModificationLog(const ModificationLog&) = delete;
  ModificationLog& operator=(const ModificationLog&) = delete;

  struct Entry {
    Modification mod;
    std::vector<Value> old_values;
    TupleId new_tuple = kInvalidTuple;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  void Clear() { entries_.clear(); }

  /// Stops/starts recording without unregistering.
  void Pause() { recording_ = false; }
  void Resume() { recording_ = true; }

  /// Applies every logged modification, in order, to another database
  /// with the same schema and starting state. Tuple ids line up
  /// because appends are deterministic given identical starting state.
  Status ReplayOnto(Database* target) const;

  /// Reverts every logged modification, in reverse order, using the
  /// recorded pre-images. `target` must be in the post-log state
  /// (usually the recorded database itself); afterwards it is back in
  /// the pre-log state. Listeners are NOT notified (Database::Undo),
  /// so callers rebuild listener-held state — the coordinator rebinds
  /// its tools. This is the undo-log rollback: cost is O(entries), not
  /// O(database) like a clone-restore.
  Status UndoOnto(Database* target) const;

  /// Per-table counts of cells written and rows inserted/deleted.
  struct TableSummary {
    int64_t cells_written = 0;
    int64_t rows_inserted = 0;
    int64_t rows_deleted = 0;
  };
  std::map<std::string, TableSummary> Summarize() const;

  /// Human-readable one-line-per-table report.
  std::string ToString() const;

  /// Move-appends an entry recorded elsewhere: the coordinator's
  /// parallel pass adopts a task's recorded notifications instead of
  /// replaying copies of them through the listener interface. Honors
  /// Pause() like the listener callbacks.
  void Adopt(Entry&& e) {
    if (recording_) entries_.push_back(std::move(e));
  }
  /// Counts one adopted batch delivery (keeps num_batches() identical
  /// to what direct listening would have produced).
  void CountAdoptedBatch() {
    if (recording_) ++num_batches_;
  }

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  /// Batch fast path: one reserve + append per batch instead of one
  /// push_back per modification.
  void OnAppliedBatch(std::span<const Modification> mods,
                      std::span<const std::vector<Value>> old_values,
                      std::span<const TupleId> new_tuples) override;

  /// Number of OnAppliedBatch deliveries observed (the batch pipeline's
  /// effectiveness counter: entries() grows per modification, this per
  /// batch).
  int64_t num_batches() const { return num_batches_; }

 private:
  Database* db_;
  bool recording_ = true;
  std::vector<Entry> entries_;
  int64_t num_batches_ = 0;
};

}  // namespace aspect
