// Table: columnar tuple storage with stable tuple ids.
//
// Tuple ids are dense row indexes that remain stable for the lifetime of
// the table: deletion tombstones a row instead of moving others, so the
// per-tuple statistics that tweaking tools maintain stay valid across
// modifications. Appends allocate fresh ids at the end.
#pragma once

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/probe.h"
#include "common/result.h"
#include "common/status.h"
#include "relational/column.h"
#include "relational/schema.h"

namespace aspect {

using TupleId = int64_t;
inline constexpr TupleId kInvalidTuple = -1;

/// Staging area for bulk columnar row construction (DESIGN.md §12).
/// A RowBlock owns private probe-less columns shaped like a TableSpec;
/// a producer (typically one generation shard on its own thread) fills
/// it with PushRow, then Table::AppendRows splices the whole block onto
/// the table with one vector concatenation per column — no per-tuple
/// listener, modlog, or probe overhead. Blocks built concurrently are
/// spliced serially in shard order, which is what keeps the sharded
/// generators bitwise-identical at every thread count.
class RowBlock {
 public:
  explicit RowBlock(const TableSpec& spec);

  /// Pre-allocates capacity for `n` rows in every staging column.
  void Reserve(int64_t n);

  /// Appends one row. Every value is type-checked before any column
  /// grows, so a mismatch cannot leave the block ragged.
  Status PushRow(const std::vector<Value>& values);

  int64_t num_rows() const { return rows_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }

 private:
  friend class Table;
  std::vector<Column> cols_;
  int64_t rows_ = 0;
};

class Table {
 public:
  explicit Table(const TableSpec& spec);

  const std::string& name() const { return spec_.name; }
  const TableSpec& spec() const { return spec_; }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  Column& column(int i) { return columns_[static_cast<size_t>(i)]; }
  int ColumnIndex(const std::string& col_name) const {
    return spec_.ColumnIndex(col_name);
  }

  /// Assigns this table's schema index as the probe identity for the
  /// scope-conformance analyzer (analysis/probe.h) and propagates it to
  /// every column. Row-structure accesses (liveness, slot counts, tuple
  /// inserts/deletes) probe as (table, kProbeRowStructure); cell
  /// accesses probe per column. Database's constructor calls this.
  void SetProbeTable(int table) {
    probe_table_ = table;
    for (int c = 0; c < num_columns(); ++c) {
      columns_[static_cast<size_t>(c)].SetProbeId(table, c);
    }
  }

  /// Number of live (non-tombstoned) tuples — this is |T| everywhere in
  /// the paper's formulas.
  int64_t NumTuples() const {
    analysis::ProbeRead(probe_table_, analysis::kProbeRowStructure);
    return num_live_;
  }
  /// Number of row slots including tombstones; tuple ids range over
  /// [0, NumSlots()).
  int64_t NumSlots() const {
    analysis::ProbeRead(probe_table_, analysis::kProbeRowStructure);
    return static_cast<int64_t>(live_.size());
  }

  bool IsLive(TupleId t) const {
    analysis::ProbeRead(probe_table_, analysis::kProbeRowStructure);
    return t >= 0 && t < static_cast<int64_t>(live_.size()) &&
           live_[static_cast<size_t>(t)];
  }

  /// Appends a tuple with the given per-column values; returns its id.
  Result<TupleId> Append(const std::vector<Value>& values);

  /// Splices a staged RowBlock onto the end of the table: one row-
  /// structure probe, one structural-mutation scope, and one vector
  /// concatenation per column for the whole block (the bulk columnar
  /// construction path; see RowBlock). The block must have been built
  /// from this table's spec — a column-count mismatch is Invalid and a
  /// per-column type mismatch fails before any storage is touched.
  /// `block` is consumed. New tuples get consecutive ids at the end and
  /// are live; listeners are NOT notified (generation-time construction
  /// defers integrity to relational/integrity).
  Status AppendRows(RowBlock&& block);

  /// Pre-allocates capacity for `n` total slots across all columns.
  void Reserve(int64_t n);

  /// Rebuilds this table as a partial copy of `src` (same spec): the
  /// row structure (slot count, tombstones) and the columns named in
  /// `cols` are deep-copied; every other column becomes a kEmpty shell
  /// of the same height. Cells outside `cols` read as erased, so a
  /// caller must only touch the copied columns (the declared-access-
  /// set contract of the O1-parallel pass).
  void CopyColumnsFrom(const Table& src, const std::set<int>& cols);

  /// Tombstones a live tuple.
  Status Delete(TupleId t);

  /// Reverts a Delete: makes a tombstoned slot live again. The slot's
  /// cell values are untouched by Delete, so this restores the tuple
  /// exactly (the undo-log rollback fast path).
  Status Undelete(TupleId t);

  /// Reverts the most recent Append: removes the last slot entirely
  /// (live or tombstoned). The undo-log applies entries in reverse, so
  /// the tuple being reverted is always the last slot.
  Status PopBack();

  /// Iterates live tuple ids in increasing order.
  template <typename Fn>
  void ForEachLive(Fn&& fn) const {
    analysis::ProbeRead(probe_table_, analysis::kProbeRowStructure);
    const TupleId slots = static_cast<TupleId>(live_.size());
    for (TupleId t = 0; t < slots; ++t) {
      if (live_[static_cast<size_t>(t)]) fn(t);
    }
  }

  /// Collects the ids of all live tuples.
  std::vector<TupleId> LiveTuples() const;

  /// Reads a full row (null for empty cells).
  std::vector<Value> GetRow(TupleId t) const;

 private:
#ifndef NDEBUG
  /// Debug-only mutual-exclusion witness for row-structure mutations
  /// (Append / Delete / Undelete / PopBack). Slot allocation is sharded
  /// per table by construction — each Table owns its own free-slot
  /// frontier (live_ tail), there is no database-global allocator — so
  /// the shared-database parallel pass is contention-free as long as at
  /// most one lease holder mutates a given table's row structure. The
  /// witness asserts exactly that: two threads inside a structural
  /// mutation of the same table at once trip the counter. Copies and
  /// moves reset the witness (the new storage has no mutator), keeping
  /// Table's implicit copy/move assignable for the clone/merge paths.
  struct MutationWitness {
    std::atomic<int> depth{0};
    MutationWitness() = default;
    MutationWitness(const MutationWitness&) noexcept {}
    MutationWitness(MutationWitness&&) noexcept {}
    MutationWitness& operator=(const MutationWitness&) noexcept {
      return *this;
    }
    MutationWitness& operator=(MutationWitness&&) noexcept { return *this; }
  };
  mutable MutationWitness structure_mutators_;
#endif

  TableSpec spec_;
  std::vector<Column> columns_;
  std::vector<uint8_t> live_;
  int64_t num_live_ = 0;
  // Probe identity (see SetProbeTable); copied with the table so merged
  // storage keeps reporting the correct atom.
  int probe_table_ = -1;
};

}  // namespace aspect
