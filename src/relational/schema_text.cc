#include "relational/schema_text.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace aspect {
namespace {

std::vector<std::string> Tokens(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

Result<Schema> ParseSchemaText(const std::string& text) {
  Schema schema;
  struct PendingResponse {
    std::string resp, post_col, responder_col, post_table, author_col;
    int line;
  };
  std::vector<PendingResponse> responses;
  int line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tok = Tokens(line);
    if (tok.empty()) continue;
    auto fail = [&](const char* why) {
      return Status::Invalid(
          StrFormat("schema line %d: %s", line_no, why));
    };
    if (tok[0] == "dataset") {
      if (tok.size() != 2) return fail("dataset needs a name");
      schema.name = tok[1];
    } else if (tok[0] == "user") {
      if (tok.size() != 2) return fail("user needs a table name");
      schema.user_table = tok[1];
    } else if (tok[0] == "table") {
      if (tok.size() != 2) return fail("table needs a name");
      schema.tables.push_back({tok[1], {}});
    } else if (tok[0] == "col") {
      if (schema.tables.empty()) return fail("col before any table");
      ColumnSpec col;
      if (tok.size() == 3) {
        col.name = tok[1];
        if (tok[2] == "int64") {
          col.type = ColumnType::kInt64;
        } else if (tok[2] == "double") {
          col.type = ColumnType::kDouble;
        } else if (tok[2] == "string") {
          col.type = ColumnType::kString;
        } else {
          return fail("unknown column type");
        }
      } else if (tok.size() == 4 && tok[2] == "fk") {
        col.name = tok[1];
        col.type = ColumnType::kForeignKey;
        col.ref_table = tok[3];
      } else {
        return fail("col needs: name type | name fk table");
      }
      schema.tables.back().columns.push_back(std::move(col));
    } else if (tok[0] == "response") {
      if (tok.size() != 6) {
        return fail("response needs: resp post_col responder_col "
                    "post_table author_col");
      }
      responses.push_back({tok[1], tok[2], tok[3], tok[4], tok[5], line_no});
    } else {
      return fail("unknown directive");
    }
  }
  for (const PendingResponse& p : responses) {
    const int rt = schema.TableIndex(p.resp);
    const int pt = schema.TableIndex(p.post_table);
    if (rt < 0 || pt < 0) {
      return Status::Invalid(StrFormat(
          "schema line %d: response names unknown tables", p.line));
    }
    ResponseSpec spec;
    spec.response_table = p.resp;
    spec.post_table = p.post_table;
    spec.post_col =
        schema.tables[static_cast<size_t>(rt)].ColumnIndex(p.post_col);
    spec.responder_col =
        schema.tables[static_cast<size_t>(rt)].ColumnIndex(p.responder_col);
    spec.author_col =
        schema.tables[static_cast<size_t>(pt)].ColumnIndex(p.author_col);
    if (spec.post_col < 0 || spec.responder_col < 0 ||
        spec.author_col < 0) {
      return Status::Invalid(StrFormat(
          "schema line %d: response names unknown columns", p.line));
    }
    schema.responses.push_back(std::move(spec));
  }
  ASPECT_RETURN_NOT_OK(schema.Validate());
  return schema;
}

std::string FormatSchemaText(const Schema& schema) {
  std::ostringstream out;
  out << "dataset " << schema.name << "\n";
  if (!schema.user_table.empty()) {
    out << "user " << schema.user_table << "\n";
  }
  for (const TableSpec& t : schema.tables) {
    out << "table " << t.name << "\n";
    for (const ColumnSpec& c : t.columns) {
      out << "  col " << c.name << " ";
      switch (c.type) {
        case ColumnType::kInt64:
          out << "int64";
          break;
        case ColumnType::kDouble:
          out << "double";
          break;
        case ColumnType::kString:
          out << "string";
          break;
        case ColumnType::kForeignKey:
          out << "fk " << c.ref_table;
          break;
      }
      out << "\n";
    }
  }
  for (const ResponseSpec& r : schema.responses) {
    const TableSpec& rt =
        schema.tables[static_cast<size_t>(schema.TableIndex(r.response_table))];
    const TableSpec& pt =
        schema.tables[static_cast<size_t>(schema.TableIndex(r.post_table))];
    out << "response " << r.response_table << " "
        << rt.columns[static_cast<size_t>(r.post_col)].name << " "
        << rt.columns[static_cast<size_t>(r.responder_col)].name << " "
        << r.post_table << " "
        << pt.columns[static_cast<size_t>(r.author_col)].name << "\n";
  }
  return out.str();
}

Result<Schema> LoadSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError(StrFormat("cannot open '%s'", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseSchemaText(buf.str());
}

}  // namespace aspect
