#include "relational/integrity.h"

#include "common/string_util.h"

namespace aspect {

Status CheckIntegrity(const Database& db, const IntegrityOptions& options) {
  for (int ti = 0; ti < db.num_tables(); ++ti) {
    const Table& t = db.table(ti);
    for (int ci = 0; ci < t.num_columns(); ++ci) {
      const Column& col = t.column(ci);
      const Table* parent =
          col.is_foreign_key() ? db.FindTable(col.ref_table()) : nullptr;
      Status failure = Status::OK();
      t.ForEachLive([&](TupleId tid) {
        if (!failure.ok()) return;
        if (col.IsEmpty(tid)) {
          if (options.forbid_empty_cells) {
            failure = Status::Invalid(
                StrFormat("empty cell at %s[%lld].%s", t.name().c_str(),
                          static_cast<long long>(tid), col.name().c_str()));
          }
          return;
        }
        if (!col.is_foreign_key()) return;
        if (col.IsNull(tid)) {
          if (options.forbid_null_foreign_keys) {
            failure = Status::Invalid(
                StrFormat("NULL foreign key at %s[%lld].%s",
                          t.name().c_str(), static_cast<long long>(tid),
                          col.name().c_str()));
          }
          return;
        }
        const TupleId ref = col.GetInt(tid);
        if (parent == nullptr || !parent->IsLive(ref)) {
          failure = Status::Invalid(StrFormat(
              "dangling foreign key %s[%lld].%s -> %s[%lld]",
              t.name().c_str(), static_cast<long long>(tid),
              col.name().c_str(), col.ref_table().c_str(),
              static_cast<long long>(ref)));
        }
      });
      ASPECT_RETURN_NOT_OK(failure);
    }
  }
  return Status::OK();
}

}  // namespace aspect
