#include "relational/integrity.h"

#include <algorithm>
#include <vector>

#include "common/sharding.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace aspect {
namespace {

/// Serial check of one table; returns the first violation in
/// (column, tuple) order.
Status CheckTable(const Database& db, const Table& t,
                  const IntegrityOptions& options) {
  for (int ci = 0; ci < t.num_columns(); ++ci) {
    const Column& col = t.column(ci);
    const Table* parent =
        col.is_foreign_key() ? db.FindTable(col.ref_table()) : nullptr;
    Status failure = Status::OK();
    t.ForEachLive([&](TupleId tid) {
      if (!failure.ok()) return;
      if (col.IsEmpty(tid)) {
        if (options.forbid_empty_cells) {
          failure = Status::Invalid(
              StrFormat("empty cell at %s[%lld].%s", t.name().c_str(),
                        static_cast<long long>(tid), col.name().c_str()));
        }
        return;
      }
      if (!col.is_foreign_key()) return;
      if (col.IsNull(tid)) {
        if (options.forbid_null_foreign_keys) {
          failure = Status::Invalid(
              StrFormat("NULL foreign key at %s[%lld].%s",
                        t.name().c_str(), static_cast<long long>(tid),
                        col.name().c_str()));
        }
        return;
      }
      const TupleId ref = col.GetInt(tid);
      if (parent == nullptr || !parent->IsLive(ref)) {
        failure = Status::Invalid(StrFormat(
            "dangling foreign key %s[%lld].%s -> %s[%lld]",
            t.name().c_str(), static_cast<long long>(tid),
            col.name().c_str(), col.ref_table().c_str(),
            static_cast<long long>(ref)));
      }
    });
    ASPECT_RETURN_NOT_OK(failure);
  }
  return Status::OK();
}

}  // namespace

Status CheckIntegrity(const Database& db, const IntegrityOptions& options) {
  const int num_tables = db.num_tables();
  const int threads =
      std::min(ResolveGenThreads(options.threads), std::max(1, num_tables));
  if (threads <= 1 || num_tables <= 1) {
    for (int ti = 0; ti < num_tables; ++ti) {
      ASPECT_RETURN_NOT_OK(CheckTable(db, db.table(ti), options));
    }
    return Status::OK();
  }

  // Table-parallel: the database is read-only here, so each table
  // verifies independently; per-table status slots keep the reported
  // failure the first one in table order, matching the serial path.
  std::vector<Status> statuses(static_cast<size_t>(num_tables),
                               Status::OK());
  ThreadPool* pool = ThreadPool::Shared(threads);
  if (pool == nullptr) {
    // Called from a pool worker (nested phase): run inline.
    for (int ti = 0; ti < num_tables; ++ti) {
      statuses[static_cast<size_t>(ti)] =
          CheckTable(db, db.table(ti), options);
    }
  } else {
    for (int ti = 0; ti < num_tables; ++ti) {
      pool->Submit([&db, &options, &statuses, ti] {
        statuses[static_cast<size_t>(ti)] =
            CheckTable(db, db.table(ti), options);
      });
    }
    pool->Wait();
  }
  for (const Status& s : statuses) ASPECT_RETURN_NOT_OK(s);
  return Status::OK();
}

}  // namespace aspect
