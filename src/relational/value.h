// Value: a dynamically typed cell value (null / int64 / double / string).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace aspect {

/// Static type of a column.
enum class ColumnType : int {
  kInt64 = 0,
  kDouble = 1,
  kString = 2,
  /// 64-bit reference to a tuple id of another table.
  kForeignKey = 3,
};

const char* ColumnTypeToString(ColumnType type);

/// A dynamically typed cell value. Foreign keys surface as kInt64.
class Value {
 public:
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  int64_t int64() const { return std::get<int64_t>(repr_); }
  double dbl() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }

  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return repr_ != other.repr_; }
  bool operator<(const Value& other) const { return repr_ < other.repr_; }

  /// Renders the value for CSV output and debugging; null renders as "".
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

}  // namespace aspect
