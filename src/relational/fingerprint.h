// Order-sensitive content fingerprint of a whole Database.
//
// Hashes table names, slot counts, per-row liveness, and every cell's
// state + typed value in (table, row, column) order, so two databases
// hash equal iff they are bitwise-identical relational content — the
// check behind the cross-thread-count determinism tests and the bench
// harness's serial-vs-parallel identity assertions (DESIGN.md §12).
#pragma once

#include <cstdint>

#include "relational/database.h"

namespace aspect {

/// FNV-1a over the database's full relational content. Not a crypto
/// hash — a determinism tripwire. Doubles hash by bit pattern, so any
/// FP difference (not just large ones) changes the fingerprint.
uint64_t ContentHash(const Database& db);

}  // namespace aspect
