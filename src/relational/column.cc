#include "relational/column.h"

#include <cassert>
#include <iterator>

#include "common/string_util.h"

namespace aspect {

Column::Column(std::string name, ColumnType type, std::string ref_table)
    : name_(std::move(name)),
      type_(type),
      ref_table_(std::move(ref_table)) {
  assert(type_ == ColumnType::kForeignKey || ref_table_.empty());
}

Value Column::Get(int64_t row) const {
  analysis::ProbeRead(probe_table_, probe_col_, row);
  const size_t r = static_cast<size_t>(row);
  if (state_[r] != CellState::kValue) return Value::Null();
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      return Value(ints_[r]);
    case ColumnType::kDouble:
      return Value(doubles_[r]);
    case ColumnType::kString:
      return Value(strings_[r]);
  }
  return Value::Null();
}

bool Column::Accepts(const Value& v) const {
  if (v.is_null()) return true;
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      return v.is_int64();
    case ColumnType::kDouble:
      return v.is_double();
    case ColumnType::kString:
      return v.is_string();
  }
  return false;
}

Status Column::Set(int64_t row, const Value& v) {
  const size_t r = static_cast<size_t>(row);
  if (v.is_null()) {
    analysis::ProbeWrite(probe_table_, probe_col_, row);
    state_[r] = CellState::kNull;
    return Status::OK();
  }
  analysis::ProbeWrite(probe_table_, probe_col_, row);
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      if (!v.is_int64()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects int64, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      ints_[r] = v.int64();
      break;
    case ColumnType::kDouble:
      if (!v.is_double()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects double, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      doubles_[r] = v.dbl();
      break;
    case ColumnType::kString:
      if (!v.is_string()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects string, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      strings_[r] = v.str();
      break;
  }
  state_[r] = CellState::kValue;
  return Status::OK();
}

Status Column::SetBroadcast(const std::vector<int64_t>& rows,
                            const Value& v) {
  // Per-row attribution only when a sink is listening: the common case
  // (no probes) keeps the single dispatch and zero per-row overhead.
  if (analysis::ProbeInstalled()) {
    for (const int64_t row : rows) {
      analysis::ProbeWrite(probe_table_, probe_col_, row);
    }
  }
  if (v.is_null()) {
    for (const int64_t row : rows) {
      state_[static_cast<size_t>(row)] = CellState::kNull;
    }
    return Status::OK();
  }
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey: {
      if (!v.is_int64()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects int64, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      const int64_t x = v.int64();
      for (const int64_t row : rows) {
        ints_[static_cast<size_t>(row)] = x;
        state_[static_cast<size_t>(row)] = CellState::kValue;
      }
      break;
    }
    case ColumnType::kDouble: {
      if (!v.is_double()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects double, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      const double x = v.dbl();
      for (const int64_t row : rows) {
        doubles_[static_cast<size_t>(row)] = x;
        state_[static_cast<size_t>(row)] = CellState::kValue;
      }
      break;
    }
    case ColumnType::kString: {
      if (!v.is_string()) {
        return Status::Invalid(StrFormat(
            "column '%s' expects string, got %s", name_.c_str(),
            v.ToString().c_str()));
      }
      for (const int64_t row : rows) {
        strings_[static_cast<size_t>(row)] = v.str();
        state_[static_cast<size_t>(row)] = CellState::kValue;
      }
      break;
    }
  }
  return Status::OK();
}

void Column::Reserve(int64_t n) {
  const size_t cap = static_cast<size_t>(n);
  state_.reserve(cap);
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      ints_.reserve(cap);
      break;
    case ColumnType::kDouble:
      doubles_.reserve(cap);
      break;
    case ColumnType::kString:
      strings_.reserve(cap);
      break;
  }
}

void Column::ResizeEmpty(int64_t n) {
  const size_t rows = static_cast<size_t>(n);
  state_.assign(rows, CellState::kEmpty);
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      ints_.assign(rows, 0);
      break;
    case ColumnType::kDouble:
      doubles_.assign(rows, 0);
      break;
    case ColumnType::kString:
      strings_.assign(rows, std::string());
      break;
  }
}

void Column::Erase(int64_t row) {
  analysis::ProbeWrite(probe_table_, probe_col_, row);
  state_[static_cast<size_t>(row)] = CellState::kEmpty;
}

Status Column::Append(const Value& v) {
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      ints_.push_back(0);
      break;
    case ColumnType::kDouble:
      doubles_.push_back(0);
      break;
    case ColumnType::kString:
      strings_.emplace_back();
      break;
  }
  state_.push_back(CellState::kNull);
  return Set(size() - 1, v);
}

void Column::PopBack() {
  analysis::ProbeWrite(probe_table_, probe_col_, size() - 1);
  assert(!state_.empty());
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      ints_.pop_back();
      break;
    case ColumnType::kDouble:
      doubles_.pop_back();
      break;
    case ColumnType::kString:
      strings_.pop_back();
      break;
  }
  state_.pop_back();
}

void Column::SetInt(int64_t row, int64_t v) {
  analysis::ProbeWrite(probe_table_, probe_col_, row);
  assert(type_ == ColumnType::kInt64 || type_ == ColumnType::kForeignKey);
  ints_[static_cast<size_t>(row)] = v;
  state_[static_cast<size_t>(row)] = CellState::kValue;
}

void Column::SetDouble(int64_t row, double v) {
  analysis::ProbeWrite(probe_table_, probe_col_, row);
  assert(type_ == ColumnType::kDouble);
  doubles_[static_cast<size_t>(row)] = v;
  state_[static_cast<size_t>(row)] = CellState::kValue;
}

Status Column::AppendBatch(Column&& src) {
  if (type_ != src.type_) {
    return Status::Invalid(StrFormat(
        "AppendBatch: column '%s' type mismatch with staged column '%s'",
        name_.c_str(), src.name_.c_str()));
  }
  switch (type_) {
    case ColumnType::kInt64:
    case ColumnType::kForeignKey:
      ints_.insert(ints_.end(), src.ints_.begin(), src.ints_.end());
      break;
    case ColumnType::kDouble:
      doubles_.insert(doubles_.end(), src.doubles_.begin(),
                      src.doubles_.end());
      break;
    case ColumnType::kString:
      strings_.insert(strings_.end(),
                      std::make_move_iterator(src.strings_.begin()),
                      std::make_move_iterator(src.strings_.end()));
      break;
  }
  state_.insert(state_.end(), src.state_.begin(), src.state_.end());
  return Status::OK();
}

void Column::CopyRowsFrom(const Column& src, int64_t lo, int64_t hi) {
  assert(type_ == src.type_);
  assert(lo >= 0 && hi < size() && hi < src.size());
  for (int64_t row = lo; row <= hi; ++row) {
    const size_t r = static_cast<size_t>(row);
    switch (type_) {
      case ColumnType::kInt64:
      case ColumnType::kForeignKey:
        ints_[r] = src.ints_[r];
        break;
      case ColumnType::kDouble:
        doubles_[r] = src.doubles_[r];
        break;
      case ColumnType::kString:
        strings_[r] = src.strings_[r];
        break;
    }
    state_[r] = src.state_[r];
  }
}

}  // namespace aspect
