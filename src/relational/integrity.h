// Referential-integrity checking. The paper's size-scaler contract
// (Sec. III-A) requires expected tuple counts and no invalid foreign
// keys; this module verifies both, and that no cell is left in the
// temporarily-empty state outside a tweak transaction.
#pragma once

#include "common/status.h"
#include "relational/database.h"

namespace aspect {

/// Options for CheckIntegrity.
struct IntegrityOptions {
  /// If true, kEmpty cells are a violation (the default between tweaks;
  /// tools may disable this mid-transaction).
  bool forbid_empty_cells = true;
  /// If true, FK cells must not be NULL.
  bool forbid_null_foreign_keys = true;
  /// Worker threads for the table-parallel check (DESIGN.md §12):
  /// 1 (default) checks serially, 0 means one per hardware thread.
  /// Tables are read-only during the check, so any table can verify
  /// concurrently with any other; the reported failure is always the
  /// first one in (table, column, tuple) order regardless of thread
  /// count.
  int threads = 1;
};

/// Returns OK iff every FK value in every live tuple refers to a live
/// tuple of the referenced table, subject to `options`.
Status CheckIntegrity(const Database& db,
                      const IntegrityOptions& options = {});

}  // namespace aspect
