// Schema: declarative description of a relational database, plus the
// sonSchema role annotations (user / post / response2post) used by the
// pairwise property (Sec. V-C of the paper).
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/value.h"

namespace aspect {

/// Declares one column of a table. `ref_table` names the referenced
/// table for kForeignKey columns and must be empty otherwise.
struct ColumnSpec {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  std::string ref_table;
};

/// Declares one table. The primary key is implicit: the tuple id.
struct TableSpec {
  std::string name;
  std::vector<ColumnSpec> columns;

  /// Index of the column with the given name, or -1.
  int ColumnIndex(const std::string& col_name) const;
};

/// sonSchema annotation: one response2post table and how it wires into
/// its post table and the user table (Fig. 11 of the paper).
struct ResponseSpec {
  std::string response_table;  // e.g. "Photo_Comment"
  int responder_col = -1;      // FK column in response_table -> user table
  int post_col = -1;           // FK column in response_table -> post table
  std::string post_table;      // e.g. "Photo"
  int author_col = -1;         // FK column in post_table -> user table
};

/// Full database schema with sonSchema annotations.
struct Schema {
  std::string name;
  std::vector<TableSpec> tables;

  /// Name of the (human) user table, empty if the schema has none.
  std::string user_table;
  /// All post/response2post instantiations in the schema.
  std::vector<ResponseSpec> responses;

  /// Index of the table with the given name, or -1.
  int TableIndex(const std::string& table_name) const;

  /// Verifies internal consistency: unique names, FK targets exist,
  /// response annotations reference real FK columns.
  Status Validate() const;
};

}  // namespace aspect
