// ReferenceGraph: foreign-key structure analysis over a Schema.
//
// Provides the two structural discoveries the property tools rely on:
//   - maximal reference chains Tk -> ... -> T1 (Definition 1), the
//     domain of the linear property;
//   - coappear groups: sets of tables referencing the same parent
//     tables (Definition 4), the domain of the coappear property.
#pragma once

#include <string>
#include <vector>

#include "relational/schema.h"

namespace aspect {

/// One foreign-key edge: `child_table`.columns[fk_col] -> `parent_table`.
struct FkEdge {
  int child_table = -1;
  int fk_col = -1;
  int parent_table = -1;
};

/// A reference chain Tk -> ... -> T1, stored bottom-up:
/// tables[0] is T1 (the root table), tables[k-1] is Tk.
/// fk_cols[i] is the FK column in tables[i+1] that references tables[i].
struct ReferenceChain {
  std::vector<int> tables;
  std::vector<int> fk_cols;

  int length() const { return static_cast<int>(tables.size()); }

  /// "Tk -> ... -> T1" with table names, for reports.
  std::string ToString(const Schema& schema) const;
};

/// A set of tables referencing the same parent tables. Member i uses
/// member_fk_cols[i][j] as its FK column to parent_tables[j]. Parent
/// tables are sorted (as a multiset, so self-pair schemas like
/// user->user fan tables work).
struct CoappearGroup {
  std::vector<int> member_tables;
  std::vector<std::vector<int>> member_fk_cols;
  std::vector<int> parent_tables;

  std::string ToString(const Schema& schema) const;
};

class ReferenceGraph {
 public:
  explicit ReferenceGraph(const Schema& schema);

  const Schema& schema() const { return schema_; }
  const std::vector<FkEdge>& edges() const { return edges_; }

  /// Outgoing FK edges of a table (the tables it references).
  const std::vector<FkEdge>& OutEdges(int table) const {
    return out_[static_cast<size_t>(table)];
  }
  /// Incoming FK edges of a table (the tables referencing it).
  const std::vector<FkEdge>& InEdges(int table) const {
    return in_[static_cast<size_t>(table)];
  }

  /// True if the FK graph has no directed cycle (chains require this).
  bool IsAcyclic() const;

  /// Enumerates all maximal reference chains of length >= 2: every
  /// directed FK path from a table nobody references down to a table
  /// that references nothing (Definition 1).
  std::vector<ReferenceChain> MaximalChains() const;

  /// Groups tables by the multiset of tables they reference; only
  /// groups whose parent multiset has >= min_parents entries are
  /// returned. Each group carries one coappear distribution.
  std::vector<CoappearGroup> CoappearGroups(int min_parents = 2) const;

 private:
  Schema schema_;
  std::vector<FkEdge> edges_;
  std::vector<std::vector<FkEdge>> out_;
  std::vector<std::vector<FkEdge>> in_;
};

}  // namespace aspect
