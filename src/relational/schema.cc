#include "relational/schema.h"

#include <set>

#include "common/string_util.h"

namespace aspect {

int TableSpec::ColumnIndex(const std::string& col_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == col_name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::TableIndex(const std::string& table_name) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].name == table_name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::Validate() const {
  std::set<std::string> names;
  for (const TableSpec& t : tables) {
    if (!names.insert(t.name).second) {
      return Status::Invalid(StrFormat("duplicate table '%s'", t.name.c_str()));
    }
    std::set<std::string> col_names;
    for (const ColumnSpec& c : t.columns) {
      if (!col_names.insert(c.name).second) {
        return Status::Invalid(StrFormat("duplicate column '%s.%s'",
                                         t.name.c_str(), c.name.c_str()));
      }
      const bool is_fk = c.type == ColumnType::kForeignKey;
      if (is_fk != !c.ref_table.empty()) {
        return Status::Invalid(
            StrFormat("column '%s.%s': ref_table must be set exactly for "
                      "foreign keys",
                      t.name.c_str(), c.name.c_str()));
      }
    }
  }
  for (const TableSpec& t : tables) {
    for (const ColumnSpec& c : t.columns) {
      if (c.type == ColumnType::kForeignKey &&
          TableIndex(c.ref_table) < 0) {
        return Status::Invalid(
            StrFormat("column '%s.%s' references unknown table '%s'",
                      t.name.c_str(), c.name.c_str(), c.ref_table.c_str()));
      }
    }
  }
  if (!user_table.empty() && TableIndex(user_table) < 0) {
    return Status::Invalid(
        StrFormat("user table '%s' not in schema", user_table.c_str()));
  }
  for (const ResponseSpec& r : responses) {
    const int rt = TableIndex(r.response_table);
    const int pt = TableIndex(r.post_table);
    if (rt < 0 || pt < 0) {
      return Status::Invalid(StrFormat(
          "response annotation '%s'->'%s' names unknown tables",
          r.response_table.c_str(), r.post_table.c_str()));
    }
    const TableSpec& rts = tables[static_cast<size_t>(rt)];
    const TableSpec& pts = tables[static_cast<size_t>(pt)];
    auto check_fk = [&](const TableSpec& ts, int col,
                        const std::string& expect) -> Status {
      if (col < 0 || col >= static_cast<int>(ts.columns.size())) {
        return Status::Invalid(
            StrFormat("response annotation: bad column index %d in '%s'",
                      col, ts.name.c_str()));
      }
      const ColumnSpec& cs = ts.columns[static_cast<size_t>(col)];
      if (cs.type != ColumnType::kForeignKey || cs.ref_table != expect) {
        return Status::Invalid(StrFormat(
            "response annotation: '%s.%s' is not a FK to '%s'",
            ts.name.c_str(), cs.name.c_str(), expect.c_str()));
      }
      return Status::OK();
    };
    ASPECT_RETURN_NOT_OK(check_fk(rts, r.responder_col, user_table));
    ASPECT_RETURN_NOT_OK(check_fk(rts, r.post_col, r.post_table));
    ASPECT_RETURN_NOT_OK(check_fk(pts, r.author_col, user_table));
  }
  return Status::OK();
}

}  // namespace aspect
