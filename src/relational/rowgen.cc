#include "relational/rowgen.h"

#include <cstddef>
#include <utility>

#include "common/sharding.h"
#include "common/thread_pool.h"

namespace aspect {

Status GenerateRowsSharded(Table* dst, int64_t rows, const Rng& stream,
                           ThreadPool* pool, const RowFn& make_row) {
  if (rows <= 0) return Status::OK();
  const std::vector<RowShard> shards = PartitionRows(rows);
  const size_t num_shards = shards.size();

  std::vector<RowBlock> blocks;
  blocks.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) blocks.emplace_back(dst->spec());
  std::vector<Status> statuses(num_shards, Status::OK());

  const int cols = dst->num_columns();
  RunShards(shards, pool, [&](const RowShard& shard) {
    RowBlock& block = blocks[shard.index];
    Status& status = statuses[shard.index];
    block.Reserve(shard.end - shard.begin);
    Rng rng = stream.Fork(shard.index);
    std::vector<Value> row(static_cast<size_t>(cols), Value::Null());
    for (int64_t r = shard.begin; r < shard.end; ++r) {
      for (Value& v : row) v = Value::Null();
      status = make_row(r, &rng, &row);
      if (!status.ok()) return;
      status = block.PushRow(row);
      if (!status.ok()) return;
    }
  });

  // First failure in shard order, independent of execution order.
  for (const Status& s : statuses) ASPECT_RETURN_NOT_OK(s);

  dst->Reserve(dst->NumSlots() + rows);
  for (RowBlock& block : blocks) {
    // aspect-lint: framework-write -- stage-1 shard drain into a fresh table
    ASPECT_RETURN_NOT_OK(dst->AppendRows(std::move(block)));
  }
  return Status::OK();
}

}  // namespace aspect
