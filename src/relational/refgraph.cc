#include "relational/refgraph.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/string_util.h"

namespace aspect {

std::string ReferenceChain::ToString(const Schema& schema) const {
  std::vector<std::string> names;
  for (auto it = tables.rbegin(); it != tables.rend(); ++it) {
    names.push_back(schema.tables[static_cast<size_t>(*it)].name);
  }
  return Join(names, " -> ");
}

std::string CoappearGroup::ToString(const Schema& schema) const {
  std::vector<std::string> members;
  for (int t : member_tables) {
    members.push_back(schema.tables[static_cast<size_t>(t)].name);
  }
  std::vector<std::string> parents;
  for (int t : parent_tables) {
    parents.push_back(schema.tables[static_cast<size_t>(t)].name);
  }
  return "{" + Join(members, ", ") + "} -> (" + Join(parents, ", ") + ")";
}

ReferenceGraph::ReferenceGraph(const Schema& schema) : schema_(schema) {
  const size_t n = schema_.tables.size();
  out_.resize(n);
  in_.resize(n);
  for (size_t ti = 0; ti < n; ++ti) {
    const TableSpec& t = schema_.tables[ti];
    for (size_t ci = 0; ci < t.columns.size(); ++ci) {
      const ColumnSpec& c = t.columns[ci];
      if (c.type != ColumnType::kForeignKey) continue;
      FkEdge e;
      e.child_table = static_cast<int>(ti);
      e.fk_col = static_cast<int>(ci);
      e.parent_table = schema_.TableIndex(c.ref_table);
      edges_.push_back(e);
      out_[ti].push_back(e);
      in_[static_cast<size_t>(e.parent_table)].push_back(e);
    }
  }
}

bool ReferenceGraph::IsAcyclic() const {
  const size_t n = schema_.tables.size();
  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::function<bool(int)> dfs = [&](int u) -> bool {
    color[static_cast<size_t>(u)] = 1;
    for (const FkEdge& e : out_[static_cast<size_t>(u)]) {
      const int v = e.parent_table;
      if (color[static_cast<size_t>(v)] == 1) return false;
      if (color[static_cast<size_t>(v)] == 0 && !dfs(v)) return false;
    }
    color[static_cast<size_t>(u)] = 2;
    return true;
  };
  for (size_t u = 0; u < n; ++u) {
    if (color[u] == 0 && !dfs(static_cast<int>(u))) return false;
  }
  return true;
}

std::vector<ReferenceChain> ReferenceGraph::MaximalChains() const {
  std::vector<ReferenceChain> chains;
  if (!IsAcyclic()) return chains;
  const size_t n = schema_.tables.size();

  // A chain is maximal iff its top table is referenced by nobody and
  // its bottom table references nobody. Enumerate every directed path
  // between such endpoints, branching on each FK choice.
  std::vector<int> path_tables;
  std::vector<int> path_cols;
  std::function<void(int)> dfs = [&](int u) {
    path_tables.push_back(u);
    if (out_[static_cast<size_t>(u)].empty()) {
      if (path_tables.size() >= 2) {
        ReferenceChain chain;
        // The path runs top-down; chains are stored bottom-up.
        chain.tables.assign(path_tables.rbegin(), path_tables.rend());
        chain.fk_cols.assign(path_cols.rbegin(), path_cols.rend());
        chains.push_back(std::move(chain));
      }
    } else {
      for (const FkEdge& e : out_[static_cast<size_t>(u)]) {
        path_cols.push_back(e.fk_col);
        dfs(e.parent_table);
        path_cols.pop_back();
      }
    }
    path_tables.pop_back();
  };
  for (size_t u = 0; u < n; ++u) {
    if (in_[u].empty()) dfs(static_cast<int>(u));
  }
  return chains;
}

std::vector<CoappearGroup> ReferenceGraph::CoappearGroups(
    int min_parents) const {
  // Key: the sorted multiset of referenced table indexes.
  std::map<std::vector<int>, CoappearGroup> groups;
  for (size_t ti = 0; ti < schema_.tables.size(); ++ti) {
    const auto& out = out_[ti];
    if (static_cast<int>(out.size()) < min_parents) continue;
    // Sort this table's FK columns by (parent table, column index) so
    // every member lists its columns in the same parent order.
    std::vector<FkEdge> sorted = out;
    std::sort(sorted.begin(), sorted.end(),
              [](const FkEdge& a, const FkEdge& b) {
                return std::tie(a.parent_table, a.fk_col) <
                       std::tie(b.parent_table, b.fk_col);
              });
    std::vector<int> key;
    std::vector<int> cols;
    for (const FkEdge& e : sorted) {
      key.push_back(e.parent_table);
      cols.push_back(e.fk_col);
    }
    CoappearGroup& g = groups[key];
    if (g.parent_tables.empty()) g.parent_tables = key;
    g.member_tables.push_back(static_cast<int>(ti));
    g.member_fk_cols.push_back(std::move(cols));
  }
  std::vector<CoappearGroup> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(std::move(g));
  return out;
}

}  // namespace aspect
