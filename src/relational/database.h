// Database: a named collection of tables plus the uniform modification
// API of Sec. III-D (deleteValues / insertValues / replaceValues) and
// row-level insert/delete, all observable by registered listeners.
//
// Every tweaking tool's Statistics Updater registers as a
// ModificationListener: it is notified after each applied modification
// with both the new state and the captured pre-images, so it can update
// its property statistics incrementally (Fig. 5 of the paper).
#pragma once

#include <memory>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace aspect {

/// The kind of a modification in the uniform ASPECT API.
enum class OpKind : int {
  kDeleteValues = 0,   // erase cells (they become kEmpty)
  kInsertValues = 1,   // fill previously erased cells
  kReplaceValues = 2,  // overwrite non-empty cells
  kInsertTuple = 3,    // append a full tuple
  kDeleteTuple = 4,    // tombstone a tuple
};

const char* OpKindToString(OpKind kind);

/// One proposed or applied modification. For the three cell operations,
/// `values` is broadcast: every tuple in `tuples` receives values[j] in
/// column cols[j] (the paper's insertValues/replaceValues semantics).
/// For kInsertTuple, `values` is the full row and `tuples`/`cols` are
/// empty; for kDeleteTuple, `tuples` holds the single victim id.
struct Modification {
  OpKind kind = OpKind::kReplaceValues;
  std::string table;
  std::vector<TupleId> tuples;
  std::vector<int> cols;
  std::vector<Value> values;

  static Modification DeleteValues(std::string table,
                                   std::vector<TupleId> tuples,
                                   std::vector<int> cols);
  static Modification InsertValues(std::string table,
                                   std::vector<TupleId> tuples,
                                   std::vector<int> cols,
                                   std::vector<Value> values);
  static Modification ReplaceValues(std::string table,
                                    std::vector<TupleId> tuples,
                                    std::vector<int> cols,
                                    std::vector<Value> values);
  static Modification InsertTuple(std::string table,
                                  std::vector<Value> row);
  static Modification DeleteTuple(std::string table, TupleId tuple);
};

/// Observer of applied modifications (the Statistics Updater hook).
class ModificationListener {
 public:
  virtual ~ModificationListener() = default;

  /// Called after `mod` has been applied.
  ///
  /// `old_values` carries pre-images: for cell operations it is laid out
  /// row-major as tuples.size() x cols.size(); for kDeleteTuple it is
  /// the deleted row; for kInsertTuple it is empty. `new_tuple` is the
  /// id assigned by kInsertTuple (kInvalidTuple otherwise).
  virtual void OnApplied(const Modification& mod,
                         const std::vector<Value>& old_values,
                         TupleId new_tuple) = 0;

  /// Called once after a whole batch applied via Database::ApplyBatch.
  /// The spans are parallel: old_values[i] / new_tuples[i] belong to
  /// mods[i], with the same layouts as OnApplied. The default forwards
  /// entry by entry; listeners with a columnar fast path override it.
  /// Batches never touch the same tuple twice (the ApplyBatch
  /// contract), so observing all writes at once is equivalent to
  /// observing them one at a time.
  virtual void OnAppliedBatch(std::span<const Modification> mods,
                              std::span<const std::vector<Value>> old_values,
                              std::span<const TupleId> new_tuples);
};

class Database {
 public:
  /// Creates an empty database with the given schema (must validate).
  static Result<std::unique_ptr<Database>> Create(const Schema& schema);

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int i) const { return *tables_[static_cast<size_t>(i)]; }
  Table& table(int i) { return *tables_[static_cast<size_t>(i)]; }

  /// Finds a table by name (nullptr if absent).
  const Table* FindTable(const std::string& name) const;
  Table* FindTable(const std::string& name);

  /// Total number of live tuples across all tables.
  int64_t TotalTuples() const;

  /// Registers/unregisters a modification listener (not owned).
  void AddListener(ModificationListener* listener);
  void RemoveListener(ModificationListener* listener);

  /// The registered listeners, in registration order. The coordinator's
  /// parallel pass uses this to replay notifications recorded on a
  /// clone to the listeners that stayed on the main database.
  const std::vector<ModificationListener*>& listeners() const {
    return listeners_;
  }

  /// RAII per-thread listener routing for the shared-database parallel
  /// pass (DESIGN.md Sec. 10): while a route is installed, Apply /
  /// ApplyBatch on the installing thread notify exactly the routed
  /// listeners instead of the registered list. Each parallel task
  /// installs a route of {its own tool's listeners, its write
  /// recorder}, so concurrent tasks never deliver into each other's
  /// statistics and the shared listener list is never read under
  /// contention. Like the access probes (analysis/probe.h), the route
  /// is a plain thread_local: with none installed (the normal case)
  /// the cost is one null check per Apply. The routed vector must
  /// outlive the route.
  class ScopedListenerRoute {
   public:
    explicit ScopedListenerRoute(
        const std::vector<ModificationListener*>* route);
    ~ScopedListenerRoute();

    ScopedListenerRoute(const ScopedListenerRoute&) = delete;
    ScopedListenerRoute& operator=(const ScopedListenerRoute&) = delete;

   private:
    const std::vector<ModificationListener*>* prev_;
  };

  /// Validates and applies a modification, then notifies listeners.
  /// On kInsertTuple success, *new_tuple (if non-null) receives the id.
  Status Apply(const Modification& mod, TupleId* new_tuple = nullptr);

  /// Applies a batch of modifications all-or-nothing: either every one
  /// applies and listeners receive a single OnAppliedBatch call, or the
  /// applied prefix is rolled back and the first error returned (with
  /// no listener notification). `new_tuples` (if non-null) receives one
  /// id per modification (kInvalidTuple for non-inserts). Callers must
  /// not address the same tuple from two modifications of one batch:
  /// listener notifications are deferred until the whole batch has been
  /// written, which is only equivalent to one-at-a-time application
  /// when the touched tuple sets are disjoint (see DESIGN.md).
  Status ApplyBatch(std::span<const Modification> mods,
                    std::vector<TupleId>* new_tuples = nullptr);

  /// Reverts one applied modification given the pre-images captured by
  /// the listener notification (`old_values` / `new_tuple` exactly as
  /// OnApplied received them). Listeners are NOT notified, like
  /// CopyContentFrom: callers rebuild listener-held state afterwards.
  /// Modifications must be undone in reverse application order so that
  /// a kInsertTuple always reverts the table's last slot (see
  /// ModificationLog::UndoOnto).
  Status Undo(const Modification& mod, const std::vector<Value>& old_values,
              TupleId new_tuple);

  /// Deep copy (listeners are not copied).
  std::unique_ptr<Database> Clone() const;

  /// Deep copy of only the listed (table index, column index) atoms; a
  /// column of -1 (AccessScope::kWholeTable) copies that table whole,
  /// and -2 (kRowStructure) copies just its row skeleton (slot count,
  /// tombstones) with every column a kEmpty shell. Unlisted tables
  /// exist but are empty; unlisted columns of a listed table keep the
  /// row structure but hold only kEmpty cells. The O1-parallel pass
  /// hands a task exactly the atoms its declared access set names, so
  /// the clone cost scales with the task's scope, not the database.
  std::unique_ptr<Database> CloneAtoms(
      const std::set<std::pair<int, int>>& atoms) const;

  /// Replaces this database's table contents with a deep copy of
  /// `other`'s. Schemas must match. Listeners stay registered but are
  /// NOT notified - callers must rebuild any listener-held state (the
  /// coordinator rebinds its tools after a rollback).
  Status CopyContentFrom(const Database& other);

 private:
  explicit Database(Schema schema);

  Status ApplyCellOp(const Modification& mod, Table* t,
                     std::vector<Value>* old_values);

  /// Applies one modification without notifying listeners; fills the
  /// pre-images and (for kInsertTuple) the produced id.
  Status ApplyOne(const Modification& mod, std::vector<Value>* old_values,
                  TupleId* inserted);

  Schema schema_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<ModificationListener*> listeners_;
};

}  // namespace aspect
