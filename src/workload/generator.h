// Snapshot generator: grows a blueprint dataset over a simulated
// timeline and materializes the chronological snapshots
// D1 < D2 < ... < D6 used throughout the paper's evaluation (Sec. VI-A).
//
// Growth is append-only and FK values always point at tuples that
// already exist in the same snapshot band, so every snapshot is a
// prefix of the next and is FK-closed; ids agree across snapshots.
#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/sharding.h"
#include "relational/database.h"
#include "workload/blueprint.h"

namespace aspect {

/// The result of growing one blueprint: the full dataset plus the
/// per-snapshot per-table size boundaries.
class SnapshotSet {
 public:
  SnapshotSet(Schema schema, std::unique_ptr<Database> full,
              std::vector<std::vector<int64_t>> sizes);

  const Schema& schema() const { return schema_; }
  int num_snapshots() const {
    return static_cast<int>(sizes_.empty() ? 0 : sizes_[0].size());
  }

  /// The fully grown dataset (equals the last snapshot).
  const Database& full() const { return *full_; }

  /// Live tuples of table `t` in snapshot `s` (both the snapshot index
  /// and size lookups are 1-based for snapshots, 0-based for tables).
  int64_t TableSize(int table, int snapshot) const {
    return sizes_[static_cast<size_t>(table)]
                 [static_cast<size_t>(snapshot - 1)];
  }

  /// Per-table sizes of snapshot `s`, in schema table order.
  std::vector<int64_t> SnapshotSizes(int snapshot) const;

  /// Materializes snapshot `s` (1-based) as an independent Database.
  /// The row copies shard across `gen.threads` workers (the full
  /// dataset is read-only here); the result does not depend on it.
  Result<std::unique_ptr<Database>> Materialize(
      int snapshot, const GenOptions& gen = {}) const;

 private:
  Schema schema_;
  std::unique_ptr<Database> full_;
  // sizes_[table][snapshot-1] = table size at that snapshot.
  std::vector<std::vector<int64_t>> sizes_;
};

/// Grows `blueprint` deterministically from `seed`. Each (snapshot,
/// table) growth band generates through the sharded columnar pipeline
/// (relational/rowgen.h, DESIGN.md §12): parent tables finish their
/// band before children start, so FK domains are per-band constants
/// and the band's rows shard across `gen.threads` workers with private
/// RNG streams. The produced dataset is bitwise identical at every
/// thread count.
Result<SnapshotSet> GenerateDataset(const DatasetBlueprint& blueprint,
                                    uint64_t seed,
                                    const GenOptions& gen = {});

}  // namespace aspect
