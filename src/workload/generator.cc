#include "workload/generator.h"

#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "relational/rowgen.h"

namespace aspect {
namespace {

const char* kCountries[] = {"sg", "cn", "us", "jp", "kr", "de", "fr", "br"};

/// Target size of a table at 1-based snapshot s.
int64_t SizeAt(const TableBlueprint& t, int s) {
  const double v =
      static_cast<double>(t.base_size) * std::pow(t.growth, s - 1);
  const int64_t n = static_cast<int64_t>(std::llround(v));
  return n < 1 ? 1 : n;
}

/// Picks a parent tuple id among the first `count` tuples with the
/// given Zipf skew; rank 1 maps to tuple 0, so early (old) tuples are
/// the popular ones - the rich-get-richer shape of real social data.
TupleId PickParent(Rng* rng, int64_t count, double zipf) {
  return rng->Zipf(count, zipf) - 1;
}

Value AttributeValue(Rng* rng, const ColumnSpec& attr, int snapshot) {
  if (attr.name == "country") {
    return Value(std::string(
        kCountries[rng->UniformInt(0, 7)]));
  }
  if (attr.name == "gender") return Value(rng->UniformInt(0, 1));
  if (attr.name == "ts") return Value(static_cast<int64_t>(snapshot));
  if (attr.type == ColumnType::kInt64) return Value(rng->UniformInt(0, 4));
  if (attr.type == ColumnType::kDouble) return Value(rng->UniformDouble());
  return Value(std::string("x"));
}

}  // namespace

SnapshotSet::SnapshotSet(Schema schema, std::unique_ptr<Database> full,
                         std::vector<std::vector<int64_t>> sizes)
    : schema_(std::move(schema)),
      full_(std::move(full)),
      sizes_(std::move(sizes)) {}

std::vector<int64_t> SnapshotSet::SnapshotSizes(int snapshot) const {
  std::vector<int64_t> out;
  out.reserve(sizes_.size());
  for (size_t t = 0; t < sizes_.size(); ++t) {
    out.push_back(TableSize(static_cast<int>(t), snapshot));
  }
  return out;
}

Result<std::unique_ptr<Database>> SnapshotSet::Materialize(
    int snapshot, const GenOptions& gen) const {
  if (snapshot < 1 || snapshot > num_snapshots()) {
    return Status::OutOfRange(StrFormat("snapshot %d", snapshot));
  }
  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Create(schema_));
  const int threads = ResolveGenThreads(gen.threads);
  ThreadPool* pool =
      threads > 1 ? ThreadPool::Shared(threads) : nullptr;
  const Rng unused(0);  // copying draws nothing
  for (int ti = 0; ti < full_->num_tables(); ++ti) {
    const Table& src = full_->table(ti);
    Table* dst = db->FindTable(src.name());
    const int64_t limit = TableSize(ti, snapshot);
    ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
        dst, limit, unused, pool,
        [&src](int64_t t, Rng* /*rng*/, std::vector<Value>* row_out) {
          *row_out = src.GetRow(t);
          return Status::OK();
        }));
  }
  return db;
}

Result<SnapshotSet> GenerateDataset(const DatasetBlueprint& blueprint,
                                    uint64_t seed, const GenOptions& gen) {
  Schema schema = blueprint.ToSchema();
  ASPECT_RETURN_NOT_OK(schema.Validate());
  // Parents must precede children so FK targets exist while growing.
  for (size_t ti = 0; ti < blueprint.tables.size(); ++ti) {
    for (const std::string& p : blueprint.tables[ti].parents) {
      const int pi = schema.TableIndex(p);
      if (pi < 0 || pi >= static_cast<int>(ti)) {
        return Status::Invalid(StrFormat(
            "blueprint table '%s': parent '%s' must be declared earlier",
            blueprint.tables[ti].name.c_str(), p.c_str()));
      }
    }
  }

  ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Create(schema));
  const Rng root(seed);
  const int threads = ResolveGenThreads(gen.threads);
  ThreadPool* pool =
      threads > 1 ? ThreadPool::Shared(threads) : nullptr;
  const int num_tables = static_cast<int>(blueprint.tables.size());
  std::vector<std::vector<int64_t>> sizes(
      static_cast<size_t>(num_tables),
      std::vector<int64_t>(static_cast<size_t>(blueprint.num_snapshots), 0));

  // Pre-resolve response wiring for self-responses.
  const int user_index = schema.TableIndex(blueprint.user_table);
  std::vector<int> response_author_col(static_cast<size_t>(num_tables), -1);
  for (const ResponseSpec& r : schema.responses) {
    const int ti = schema.TableIndex(r.response_table);
    response_author_col[static_cast<size_t>(ti)] = r.author_col;
  }

  // Growth proceeds band by band: band (s, ti) appends table ti's rows
  // for snapshot s. Tables grow in blueprint order and parents are
  // declared earlier, so by the time a band runs, every parent table
  // already holds its full snapshot-s population — the FK domain
  // (parent tuple count) is a band constant and the band's rows can
  // shard freely across threads. Each band draws from its own stream
  // root.Fork((s << 24) | ti); shards fork from that (DESIGN.md §12).
  for (int s = 1; s <= blueprint.num_snapshots; ++s) {
    for (int ti = 0; ti < num_tables; ++ti) {
      const TableBlueprint& tb = blueprint.tables[static_cast<size_t>(ti)];
      Table* table = &db->table(ti);
      const int64_t target = SizeAt(tb, s);
      const int64_t have = table->NumTuples();

      // Per-band constants: parent domains and self-response wiring.
      const size_t num_parents = tb.parents.size();
      std::vector<int64_t> parent_count(num_parents, 0);
      for (size_t p = 0; p < num_parents; ++p) {
        const int pi = schema.TableIndex(tb.parents[p]);
        parent_count[p] = db->table(pi).NumTuples();
      }
      const bool self_response =
          tb.kind == TableKind::kResponse && user_index >= 0 &&
          response_author_col[static_cast<size_t>(ti)] >= 0 &&
          num_parents >= 2;
      const Column* author_col = nullptr;
      if (self_response) {
        const int pi = schema.TableIndex(tb.parents[0]);
        author_col = &db->table(pi).column(
            response_author_col[static_cast<size_t>(ti)]);
      }

      const Rng band_stream = root.Fork(
          (static_cast<uint64_t>(s) << 24) | static_cast<uint64_t>(ti));
      ASPECT_RETURN_NOT_OK(GenerateRowsSharded(
          table, target - have, band_stream, pool,
          [&](int64_t /*row*/, Rng* rng, std::vector<Value>* row_out) {
            std::vector<Value>& row = *row_out;
            for (size_t p = 0; p < num_parents; ++p) {
              row[p] = Value(static_cast<int64_t>(
                  PickParent(rng, parent_count[p], tb.parent_zipf)));
            }
            // Occasionally make a response a self-response (reads the
            // post's author from a parent table — complete and
            // read-only during this band).
            if (self_response &&
                rng->Bernoulli(blueprint.self_response_rate)) {
              const TupleId post = row[0].int64();
              row[1] = Value(author_col->GetInt(post));
            }
            size_t c = num_parents;
            for (const ColumnSpec& attr : tb.attributes) {
              row[c++] = AttributeValue(rng, attr, s);
            }
            return Status::OK();
          }));
      sizes[static_cast<size_t>(ti)][static_cast<size_t>(s - 1)] =
          table->NumTuples();
    }
  }
  return SnapshotSet(std::move(schema), std::move(db), std::move(sizes));
}

}  // namespace aspect
