#include "workload/chronological.h"

#include "common/string_util.h"
#include "relational/refgraph.h"

namespace aspect {

Result<std::vector<std::unique_ptr<Database>>> ChronologicalSnapshots(
    const Database& db, const std::string& ts_column,
    const std::vector<int64_t>& cuts) {
  ReferenceGraph graph(db.schema());
  if (!graph.IsAcyclic()) {
    return Status::Invalid("snapshots require an acyclic FK graph");
  }
  // Parents-first topological order.
  const int n = db.num_tables();
  std::vector<int> out_degree(static_cast<size_t>(n), 0);
  std::vector<int> order, ready;
  for (int t = 0; t < n; ++t) {
    out_degree[static_cast<size_t>(t)] =
        static_cast<int>(graph.OutEdges(t).size());
    if (out_degree[static_cast<size_t>(t)] == 0) ready.push_back(t);
  }
  while (!ready.empty()) {
    const int t = ready.back();
    ready.pop_back();
    order.push_back(t);
    for (const FkEdge& e : graph.InEdges(t)) {
      if (--out_degree[static_cast<size_t>(e.child_table)] == 0) {
        ready.push_back(e.child_table);
      }
    }
  }

  std::vector<std::unique_ptr<Database>> snapshots;
  for (const int64_t cut : cuts) {
    ASPECT_ASSIGN_OR_RETURN(std::unique_ptr<Database> snap,
                            Database::Create(db.schema()));
    std::vector<std::vector<TupleId>> remap(static_cast<size_t>(n));
    for (const int ti : order) {
      const Table& src = db.table(ti);
      Table* dst = snap->FindTable(src.name());
      const int ts_col = src.ColumnIndex(ts_column);
      auto& rm = remap[static_cast<size_t>(ti)];
      rm.assign(static_cast<size_t>(src.NumSlots()), kInvalidTuple);
      Status failure = Status::OK();
      src.ForEachLive([&](TupleId t) {
        if (!failure.ok()) return;
        if (ts_col >= 0) {
          if (!src.column(ts_col).IsValue(t) ||
              src.column(ts_col).GetInt(t) > cut) {
            return;
          }
        }
        std::vector<Value> row = src.GetRow(t);
        for (int ci = 0; ci < src.num_columns(); ++ci) {
          const Column& col = src.column(ci);
          if (!col.is_foreign_key() ||
              row[static_cast<size_t>(ci)].is_null()) {
            continue;
          }
          const int pi = db.schema().TableIndex(col.ref_table());
          const TupleId mapped =
              remap[static_cast<size_t>(pi)][static_cast<size_t>(
                  row[static_cast<size_t>(ci)].int64())];
          if (mapped == kInvalidTuple) return;  // parent not in snapshot
          row[static_cast<size_t>(ci)] = Value(static_cast<int64_t>(mapped));
        }
        // aspect-lint: framework-write -- snapshot copy into a fresh table
        auto appended = dst->Append(row);
        if (!appended.ok()) {
          failure = appended.status();
          return;
        }
        rm[static_cast<size_t>(t)] = appended.ValueOrDie();
      });
      ASPECT_RETURN_NOT_OK(failure);
    }
    snapshots.push_back(std::move(snap));
  }
  return snapshots;
}

}  // namespace aspect
