// Dataset blueprints: declarative descriptions of the synthetic
// social-network datasets that stand in for the paper's proprietary
// Xiami and Douban crawls (see DESIGN.md, substitution table).
//
// Each blueprint describes table kinds, FK wiring, per-table base size
// and growth rate (growth is deliberately non-uniform across tables,
// as in the real datasets - Sec. VI-B), and popularity skew. The
// factories below reproduce the structural counts the paper reports:
//
//   dataset          tables  chains  coappear  pairwise   (paper)
//   XiamiLike          31      42       12        4       28/38/12/4
//   DoubanMovieLike    17      24        6        2       17/24/6/2
//   DoubanBookLike     12      16        4        2       12/15/4/2
//   DoubanMusicLike    11      15        4        1       11/14/4/1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace aspect {

/// How a table's tuples are generated.
enum class TableKind : int {
  kRoot = 0,      // no FKs (User, Movie, Artist, ...)
  kEntity = 1,    // item referencing other items (Song -> Album)
  kPost = 2,      // user-generated content; first parent is the author
  kActivity = 3,  // user-item interaction (Listen_Song, Movie_Seen, ...)
  kResponse = 4,  // response2post; parents are (post table, user table)
};

/// Blueprint for one table.
struct TableBlueprint {
  std::string name;
  TableKind kind = TableKind::kRoot;
  /// Referenced tables, one FK column per entry, in column order.
  /// Must name tables that appear earlier in the blueprint.
  std::vector<std::string> parents;
  /// Live tuples at snapshot 1.
  int64_t base_size = 100;
  /// Multiplicative size growth per snapshot.
  double growth = 1.5;
  /// Zipf skew used when picking each parent tuple (0 = uniform).
  double parent_zipf = 0.8;
  /// Extra non-FK attribute columns appended after the FK columns.
  std::vector<ColumnSpec> attributes;
};

/// Blueprint for a whole dataset.
struct DatasetBlueprint {
  std::string name;
  std::string user_table;
  std::vector<TableBlueprint> tables;
  int num_snapshots = 6;
  /// Probability that a response is a self-response (responder equals
  /// the post author), exercising the rho_S extension of Sec. X-C3.
  double self_response_rate = 0.02;

  /// Builds the relational Schema (with sonSchema annotations) that
  /// this blueprint generates.
  Schema ToSchema() const;
};

/// Music social network modelled on Xiami (Fig. 24): 30 tables,
/// Song -> Album -> Artist hierarchy, 4 response2post tables.
/// `scale` multiplies every base size.
DatasetBlueprint XiamiLike(double scale = 1.0);

/// Movie social network modelled on DoubanMovie (Fig. 23): 17 tables.
DatasetBlueprint DoubanMovieLike(double scale = 1.0);

/// Book social network modelled on DoubanBook (Fig. 22): 12 tables.
DatasetBlueprint DoubanBookLike(double scale = 1.0);

/// Music social network modelled on DoubanMusic (Fig. 21): 11 tables.
DatasetBlueprint DoubanMusicLike(double scale = 1.0);

/// TPC-H-flavoured retail schema (8 tables, a 5-deep reference chain
/// Lineitem -> Orders -> Customer -> Nation -> Region). No sonSchema
/// roles: demonstrates that the framework is not tied to social
/// networks - linear / coappear / degree tools apply unchanged, the
/// pairwise tool simply has no response2post instantiations.
DatasetBlueprint RetailLike(double scale = 1.0);

}  // namespace aspect
