#include "workload/blueprint.h"

#include <cmath>

namespace aspect {
namespace {

int64_t Scaled(double scale, int64_t base) {
  const int64_t v = static_cast<int64_t>(std::llround(scale * static_cast<double>(base)));
  return v < 2 ? 2 : v;
}

TableBlueprint Root(std::string name, int64_t base, double growth,
                    std::vector<ColumnSpec> attrs = {}) {
  TableBlueprint t;
  t.name = std::move(name);
  t.kind = TableKind::kRoot;
  t.base_size = base;
  t.growth = growth;
  t.attributes = std::move(attrs);
  return t;
}

TableBlueprint Entity(std::string name, std::vector<std::string> parents,
                      int64_t base, double growth) {
  TableBlueprint t;
  t.name = std::move(name);
  t.kind = TableKind::kEntity;
  t.parents = std::move(parents);
  t.base_size = base;
  t.growth = growth;
  return t;
}

TableBlueprint Post(std::string name, std::vector<std::string> parents,
                    int64_t base, double growth) {
  TableBlueprint t;
  t.name = std::move(name);
  t.kind = TableKind::kPost;
  t.parents = std::move(parents);
  t.base_size = base;
  t.growth = growth;
  t.attributes = {{"kind", ColumnType::kInt64, ""}};
  return t;
}

TableBlueprint Activity(std::string name, std::vector<std::string> parents,
                        int64_t base, double growth,
                        double zipf = 0.8) {
  TableBlueprint t;
  t.name = std::move(name);
  t.kind = TableKind::kActivity;
  t.parents = std::move(parents);
  t.base_size = base;
  t.growth = growth;
  t.parent_zipf = zipf;
  t.attributes = {{"ts", ColumnType::kInt64, ""}};
  return t;
}

TableBlueprint Response(std::string name, std::string post_table,
                        std::string user_table, int64_t base,
                        double growth) {
  TableBlueprint t;
  t.name = std::move(name);
  t.kind = TableKind::kResponse;
  t.parents = {std::move(post_table), std::move(user_table)};
  t.base_size = base;
  t.growth = growth;
  t.attributes = {{"ts", ColumnType::kInt64, ""}};
  return t;
}

std::vector<ColumnSpec> UserAttrs() {
  return {{"country", ColumnType::kString, ""},
          {"gender", ColumnType::kInt64, ""}};
}

}  // namespace

Schema DatasetBlueprint::ToSchema() const {
  Schema schema;
  schema.name = name;
  schema.user_table = user_table;
  for (const TableBlueprint& t : tables) {
    TableSpec spec;
    spec.name = t.name;
    for (size_t p = 0; p < t.parents.size(); ++p) {
      ColumnSpec c;
      c.name = "fk_" + t.parents[p] + "_" + std::to_string(p);
      c.type = ColumnType::kForeignKey;
      c.ref_table = t.parents[p];
      spec.columns.push_back(std::move(c));
    }
    for (const ColumnSpec& a : t.attributes) spec.columns.push_back(a);
    schema.tables.push_back(std::move(spec));
  }
  // Response annotations: response tables wire (post, user); the post
  // table's author is its FK column to the user table.
  for (const TableBlueprint& t : tables) {
    if (t.kind != TableKind::kResponse) continue;
    ResponseSpec r;
    r.response_table = t.name;
    r.post_table = t.parents[0];
    r.post_col = 0;
    r.responder_col = 1;
    const int pt = schema.TableIndex(r.post_table);
    r.author_col = -1;
    if (pt >= 0) {
      const TableSpec& ps = schema.tables[static_cast<size_t>(pt)];
      for (size_t ci = 0; ci < ps.columns.size(); ++ci) {
        if (ps.columns[ci].type == ColumnType::kForeignKey &&
            ps.columns[ci].ref_table == user_table) {
          r.author_col = static_cast<int>(ci);
          break;
        }
      }
    }
    schema.responses.push_back(std::move(r));
  }
  return schema;
}

DatasetBlueprint XiamiLike(double scale) {
  DatasetBlueprint d;
  d.name = "XiamiLike";
  d.user_table = "User";
  auto s = [scale](int64_t base) { return Scaled(scale, base); };
  // Entities.
  d.tables.push_back(Root("User", s(240), 1.45, UserAttrs()));
  d.tables.push_back(Root("Artist", s(60), 1.35));
  d.tables.push_back(Root("Genre", s(12), 1.1));
  d.tables.push_back(Entity("Album", {"Artist"}, s(120), 1.4));
  d.tables.push_back(Entity("Song", {"Album"}, s(500), 1.45));
  d.tables.push_back(Entity("MV", {"Artist"}, s(50), 1.4));
  // Posts.
  d.tables.push_back(Post("Collection", {"User"}, s(90), 1.5));
  d.tables.push_back(Post("Photo", {"User"}, s(110), 1.55));
  d.tables.push_back(Post("Space", {"User"}, s(100), 1.45));
  d.tables.push_back(Post("Thread", {"User"}, s(70), 1.5));
  // Song activities.
  d.tables.push_back(Activity("Listen_Song", {"Song", "User"}, s(900), 1.6));
  d.tables.push_back(Activity("Lib_Song", {"Song", "User"}, s(600), 1.55));
  d.tables.push_back(Activity("Song_Comment", {"Song", "User"}, s(300), 1.5));
  d.tables.push_back(Activity("Song_Fav", {"Song", "User"}, s(250), 1.55));
  // Album activities.
  d.tables.push_back(Activity("Listen_Album", {"Album", "User"}, s(400), 1.55));
  d.tables.push_back(Activity("Lib_Album", {"Album", "User"}, s(260), 1.5));
  d.tables.push_back(Activity("Album_Comment", {"Album", "User"}, s(200), 1.45));
  // Artist activities.
  d.tables.push_back(Activity("Listen_Artist", {"Artist", "User"}, s(350), 1.55));
  d.tables.push_back(Activity("Lib_Artist", {"Artist", "User"}, s(220), 1.5));
  d.tables.push_back(Activity("Artist_Fan", {"Artist", "User"}, s(280), 1.5));
  d.tables.push_back(Activity("Artist_Comment", {"Artist", "User"}, s(180), 1.45));
  // MV activities.
  d.tables.push_back(Activity("MV_Comment", {"MV", "User"}, s(160), 1.5));
  d.tables.push_back(Activity("MV_Like", {"MV", "User"}, s(200), 1.55));
  // Links.
  d.tables.push_back(Activity("Collect_Song", {"Collection", "Song"}, s(400), 1.5));
  d.tables.push_back(Activity("Song_Genre", {"Song", "Genre"}, s(450), 1.45));
  d.tables.push_back(Activity("Artist_Genre", {"Artist", "Genre"}, s(80), 1.35));
  d.tables.push_back(Activity("User_Fan", {"User", "User"}, s(300), 1.5));
  // response2post instantiations (the 4 pairwise distributions).
  d.tables.push_back(Response("Photo_Comment", "Photo", "User", s(260), 1.55));
  d.tables.push_back(Response("Space_Comment", "Space", "User", s(240), 1.5));
  d.tables.push_back(Response("Collect_Like", "Collection", "User", s(220), 1.5));
  d.tables.push_back(Response("Thread_Comment", "Thread", "User", s(200), 1.55));
  return d;
}

DatasetBlueprint DoubanMovieLike(double scale) {
  DatasetBlueprint d;
  d.name = "DoubanMovieLike";
  d.user_table = "User";
  auto s = [scale](int64_t base) { return Scaled(scale, base); };
  d.tables.push_back(Root("User", s(260), 1.45, UserAttrs()));
  d.tables.push_back(Root("Movie", s(150), 1.35));
  d.tables.push_back(Root("Star", s(90), 1.3));
  d.tables.push_back(Entity("Trailer", {"Movie"}, s(120), 1.4));
  d.tables.push_back(Activity("Movie_Comment", {"Movie", "User"}, s(500), 1.55));
  d.tables.push_back(Activity("Movie_Seen", {"Movie", "User"}, s(700), 1.6));
  d.tables.push_back(Activity("Movie_Watching", {"Movie", "User"}, s(250), 1.5));
  d.tables.push_back(Activity("Movie_Wish", {"Movie", "User"}, s(350), 1.55));
  // Review and Photo are post tables that also reference Movie, so they
  // join the (Movie, User) coappear group like in Fig. 23.
  d.tables.push_back(Post("Review", {"User", "Movie"}, s(180), 1.5));
  d.tables.push_back(Post("Photo", {"User", "Movie"}, s(200), 1.5));
  d.tables.push_back(Activity("Movie_Actor", {"Star", "Movie"}, s(300), 1.35));
  d.tables.push_back(Activity("Movie_Script", {"Star", "Movie"}, s(120), 1.3));
  d.tables.push_back(Activity("Movie_Director", {"Star", "Movie"}, s(140), 1.3));
  d.tables.push_back(Response("Review_Comment", "Review", "User", s(320), 1.55));
  d.tables.push_back(Response("Photo_Comment", "Photo", "User", s(280), 1.5));
  d.tables.push_back(Activity("Trailer_Comment", {"Trailer", "User"}, s(180), 1.45));
  d.tables.push_back(Activity("Star_Fan", {"Star", "User"}, s(240), 1.45));
  return d;
}

DatasetBlueprint DoubanBookLike(double scale) {
  DatasetBlueprint d;
  d.name = "DoubanBookLike";
  d.user_table = "User";
  auto s = [scale](int64_t base) { return Scaled(scale, base); };
  d.tables.push_back(Root("User", s(240), 1.45, UserAttrs()));
  d.tables.push_back(Root("Author", s(80), 1.3));
  d.tables.push_back(Entity("Book", {"Author"}, s(160), 1.4));
  d.tables.push_back(Activity("Book_Comment", {"Book", "User"}, s(450), 1.55));
  d.tables.push_back(Activity("Book_Reading", {"Book", "User"}, s(300), 1.5));
  d.tables.push_back(Activity("Book_Read", {"Book", "User"}, s(550), 1.6));
  d.tables.push_back(Activity("Book_Wish", {"Book", "User"}, s(280), 1.5));
  d.tables.push_back(Post("Diary", {"User", "Book"}, s(140), 1.5));
  d.tables.push_back(Post("Review", {"User", "Book"}, s(170), 1.5));
  d.tables.push_back(Response("Diary_Comment", "Diary", "User", s(240), 1.5));
  d.tables.push_back(Response("Review_Comment", "Review", "User", s(300), 1.55));
  d.tables.push_back(Activity("User_Fan", {"User", "User"}, s(260), 1.5));
  return d;
}

DatasetBlueprint DoubanMusicLike(double scale) {
  DatasetBlueprint d;
  d.name = "DoubanMusicLike";
  d.user_table = "User";
  auto s = [scale](int64_t base) { return Scaled(scale, base); };
  d.tables.push_back(Root("User", s(220), 1.45, UserAttrs()));
  d.tables.push_back(Root("Artist", s(70), 1.3));
  d.tables.push_back(Entity("Album", {"Artist"}, s(180), 1.4));
  d.tables.push_back(Activity("Album_Comment", {"Album", "User"}, s(380), 1.55));
  d.tables.push_back(Activity("Album_Listening", {"Album", "User"}, s(260), 1.5));
  d.tables.push_back(Activity("Album_Heard", {"Album", "User"}, s(480), 1.6));
  d.tables.push_back(Activity("Album_Wish", {"Album", "User"}, s(240), 1.5));
  d.tables.push_back(Post("Review", {"User", "Album"}, s(150), 1.5));
  d.tables.push_back(Response("Review_Comment", "Review", "User", s(280), 1.55));
  d.tables.push_back(Activity("Artist_Fan", {"Artist", "User"}, s(200), 1.45));
  d.tables.push_back(Activity("User_Fan", {"User", "User"}, s(230), 1.5));
  return d;
}


DatasetBlueprint RetailLike(double scale) {
  DatasetBlueprint d;
  d.name = "RetailLike";
  auto s = [scale](int64_t base) { return Scaled(scale, base); };
  d.tables.push_back(Root("Region", s(5), 1.0));
  d.tables.push_back(Entity("Nation", {"Region"}, s(25), 1.05));
  d.tables.push_back(Entity("Customer", {"Nation"}, s(300), 1.5));
  d.tables.push_back(Entity("Supplier", {"Nation"}, s(40), 1.3));
  d.tables.push_back(Root("Part", s(200), 1.35));
  d.tables.push_back(Activity("PartSupp", {"Part", "Supplier"}, s(400), 1.35));
  d.tables.push_back(Entity("Orders", {"Customer"}, s(450), 1.55));
  d.tables.push_back(
      Activity("Lineitem", {"Orders", "Part"}, s(1200), 1.6));
  return d;
}

}  // namespace aspect
