// Chronological snapshot extraction (Sec. III-C / VI-A): when the
// dataset has a time attribute, ASPECT takes snapshots D1 < ... < Dr
// directly from it instead of sampling.
//
// A tuple belongs to the snapshot at cut `c` iff its timestamp column
// (when it has one) is <= c AND all of its FK parents belong too -
// real datasets satisfy the latter automatically (you cannot comment
// on a post that does not exist yet), and enforcing it keeps snapshots
// FK-closed even on noisy inputs. Tables without the timestamp column
// are taken whole.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/database.h"

namespace aspect {

/// Extracts one FK-closed snapshot per cut (cuts need not be sorted).
/// `ts_column` names the timestamp column (tables lacking it are
/// copied whole). Tuple ids are densified; FK values remapped.
Result<std::vector<std::unique_ptr<Database>>> ChronologicalSnapshots(
    const Database& db, const std::string& ts_column,
    const std::vector<int64_t>& cuts);

}  // namespace aspect
