// DegreeDistributionTool: enforces per-edge fan-out distributions.
//
// Degree distributions are the most popular similarity property in the
// data-scaling literature the paper surveys (gMark, GScaler, UpSizeR
// all preserve them); this tool contributes them to the ASPECT
// repository as an additional, independently developed tweaking tool -
// exactly the collaborative extension story of Sec. I-B.
//
// For every FK edge C.col -> P the property is
//   f(d) = number of parent tuples in P with exactly d children in C,
// with f(0) implicit (= |P| - stored mass). Necessary conditions for a
// target f~ mirror Theorem 2:
//   (D1) sum_d d * f~(d) = |C|      (every child sits under a parent)
//   (D2) sum_{d>=1} f~(d) <= |P|    (enough parents)
//
// The tweak computes the target degree multiset, assigns each parent a
// target degree rank-by-rank (sorted current vs sorted target, which
// minimizes moved children), then re-points children from over-degree
// parents to under-degree parents.
#pragma once

#include <map>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "relational/refgraph.h"
#include "stats/freq_dist.h"

namespace aspect {

class DegreeDistributionTool : public PropertyTool {
 public:
  /// Enforces the distribution of every FK edge of the schema.
  explicit DegreeDistributionTool(const Schema& schema);

  std::string name() const override { return "degree"; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr
                   : std::make_unique<DegreeDistributionTool>(*this);
  }

  Status SetTargetFromDataset(const Database& ground_truth) override;
  /// User-input mode: one distribution per edge, in `edges()` order,
  /// plus the target parent counts (for the implicit zero degree).
  Status SetTargetDistributions(std::vector<FrequencyDistribution> targets,
                                std::vector<int64_t> target_parents);
  /// Statistical-extrapolation mode (Sec. III-C, mode (c)): fits every
  /// edge's fan-out distribution across the snapshots and extrapolates
  /// to a dataset of `target_size` total tuples.
  Status SetTargetByExtrapolation(
      const std::vector<const Database*>& snapshots, double target_size);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;
  Status SaveTarget(std::ostream* out) const override;
  Status LoadTarget(std::istream* in) override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  const std::vector<FkEdge>& edges() const { return edges_; }
  const FrequencyDistribution& CurrentDist(int edge) const {
    return dist_[static_cast<size_t>(edge)];
  }
  const FrequencyDistribution& TargetDist(int edge) const {
    return target_[static_cast<size_t>(edge)];
  }

 private:
  struct EdgeState {
    // Children count per parent slot (live parents only meaningful).
    std::vector<int64_t> degree;
    // Child tuples per parent (for donor selection).
    std::map<TupleId, std::vector<TupleId>> children;
  };

  void AdjustEdge(int edge, TupleId parent, TupleId child, int64_t delta);
  double EdgeError(int edge) const;
  /// Expands the target distribution of an edge into a sorted (desc)
  /// degree multiset covering every live parent.
  std::vector<int64_t> TargetDegreeSequence(int edge) const;

  Schema schema_;
  std::vector<FkEdge> edges_;
  Database* db_ = nullptr;
  std::vector<EdgeState> state_;
  std::vector<FrequencyDistribution> dist_;    // over d >= 1
  std::vector<FrequencyDistribution> target_;  // over d >= 1
  std::vector<int64_t> target_parents_;
  int max_attempts_ = 24;
};

}  // namespace aspect
