#include "properties/degree.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <cassert>
#include <cmath>

#include "aspect/target_generator.h"
#include "common/string_util.h"
#include "stats/fitting.h"

namespace aspect {

DegreeDistributionTool::DegreeDistributionTool(const Schema& schema)
    : schema_(schema) {
  ReferenceGraph graph(schema_);
  edges_ = graph.edges();
  dist_.assign(edges_.size(), FrequencyDistribution(1));
  target_.assign(edges_.size(), FrequencyDistribution(1));
  target_parents_.assign(edges_.size(), 0);
}

Status DegreeDistributionTool::SetTargetFromDataset(
    const Database& ground_truth) {
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge& edge = edges_[e];
    const Table& child = ground_truth.table(edge.child_table);
    const Table& parent = ground_truth.table(edge.parent_table);
    std::map<TupleId, int64_t> deg;
    child.ForEachLive([&](TupleId t) {
      if (child.column(edge.fk_col).IsValue(t)) {
        ++deg[child.column(edge.fk_col).GetInt(t)];
      }
    });
    FrequencyDistribution f(1);
    for (const auto& [p, d] : deg) f.Add({d}, 1);
    target_[e] = std::move(f);
    target_parents_[e] = parent.NumTuples();
  }
  return Status::OK();
}

Status DegreeDistributionTool::SetTargetDistributions(
    std::vector<FrequencyDistribution> targets,
    std::vector<int64_t> target_parents) {
  if (targets.size() != edges_.size() ||
      target_parents.size() != edges_.size()) {
    return Status::Invalid("degree: wrong number of edge targets");
  }
  target_ = std::move(targets);
  target_parents_ = std::move(target_parents);
  return Status::OK();
}

Status DegreeDistributionTool::SetTargetByExtrapolation(
    const std::vector<const Database*>& snapshots, double target_size) {
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge edge = edges_[e];
    auto extract = [edge](const Database& db) {
      std::map<TupleId, int64_t> deg;
      const Table& child = db.table(edge.child_table);
      child.ForEachLive([&](TupleId t) {
        if (child.column(edge.fk_col).IsValue(t)) {
          ++deg[child.column(edge.fk_col).GetInt(t)];
        }
      });
      FrequencyDistribution f(1);
      for (const auto& [p, d] : deg) f.Add({d}, 1);
      return f;
    };
    ASPECT_ASSIGN_OR_RETURN(
        FrequencyDistribution predicted,
        ExtrapolateDistribution(snapshots, extract, target_size));
    target_[e] = std::move(predicted);
    // Extrapolate the parent count with a linear fit as well.
    std::vector<double> xs, ys;
    for (const Database* snap : snapshots) {
      xs.push_back(static_cast<double>(snap->TotalTuples()));
      ys.push_back(static_cast<double>(
          snap->table(edge.parent_table).NumTuples()));
    }
    ASPECT_ASSIGN_OR_RETURN(std::vector<double> fit, PolyFit(xs, ys, 1));
    target_parents_[e] = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(PolyEval(fit, target_size))));
  }
  return Status::OK();
}

Status DegreeDistributionTool::Bind(Database* db) {
  db_ = db;
  state_.assign(edges_.size(), EdgeState{});
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge& edge = edges_[e];
    const Table& child = db_->table(edge.child_table);
    const Table& parent = db_->table(edge.parent_table);
    EdgeState& st = state_[e];
    st.degree.assign(static_cast<size_t>(parent.NumSlots()), 0);
    dist_[e].Clear();
    child.ForEachLive([&](TupleId t) {
      if (!child.column(edge.fk_col).IsValue(t)) return;
      const TupleId p = child.column(edge.fk_col).GetInt(t);
      ++st.degree[static_cast<size_t>(p)];
      st.children[p].push_back(t);
    });
    parent.ForEachLive([&](TupleId p) {
      const int64_t d = st.degree[static_cast<size_t>(p)];
      if (d > 0) dist_[e].Add({d}, 1);
    });
  }
  db_->AddListener(this);
  return Status::OK();
}

void DegreeDistributionTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
  state_.clear();
}

void DegreeDistributionTool::AdjustEdge(int edge, TupleId parent,
                                        TupleId child, int64_t delta) {
  EdgeState& st = state_[static_cast<size_t>(edge)];
  if (parent >= static_cast<TupleId>(st.degree.size())) {
    st.degree.resize(static_cast<size_t>(parent) + 1, 0);
  }
  int64_t& d = st.degree[static_cast<size_t>(parent)];
  if (d > 0) dist_[static_cast<size_t>(edge)].Add({d}, -1);
  d += delta;
  assert(d >= 0);
  if (d > 0) dist_[static_cast<size_t>(edge)].Add({d}, 1);
  auto& kids = st.children[parent];
  if (delta > 0) {
    kids.push_back(child);
  } else {
    const auto it = std::find(kids.begin(), kids.end(), child);
    if (it != kids.end()) {
      *it = kids.back();
      kids.pop_back();
    }
    if (kids.empty()) st.children.erase(parent);
  }
}

void DegreeDistributionTool::OnApplied(const Modification& mod,
                                       const std::vector<Value>& old_values,
                                       TupleId new_tuple) {
  if (db_ == nullptr) return;
  const int table = db_->schema().TableIndex(mod.table);
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge& edge = edges_[e];
    if (edge.child_table != table) continue;
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues:
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          if (mod.cols[cj] != edge.fk_col) continue;
          for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
            const Value& old_v = old_values[tj * mod.cols.size() + cj];
            if (!old_v.is_null()) {
              AdjustEdge(static_cast<int>(e), old_v.int64(),
                         mod.tuples[tj], -1);
            }
            if (mod.kind != OpKind::kDeleteValues &&
                !mod.values[cj].is_null()) {
              AdjustEdge(static_cast<int>(e), mod.values[cj].int64(),
                         mod.tuples[tj], +1);
            }
          }
        }
        break;
      case OpKind::kInsertTuple: {
        const Value& v = mod.values[static_cast<size_t>(edge.fk_col)];
        if (!v.is_null()) {
          AdjustEdge(static_cast<int>(e), v.int64(), new_tuple, +1);
        }
        break;
      }
      case OpKind::kDeleteTuple: {
        const Value& v = old_values[static_cast<size_t>(edge.fk_col)];
        if (!v.is_null()) {
          AdjustEdge(static_cast<int>(e), v.int64(), mod.tuples[0], -1);
        }
        break;
      }
    }
  }
}

double DegreeDistributionTool::EdgeError(int edge) const {
  // L1 over d >= 1 plus the implicit zero-degree difference,
  // normalized by the target parent count (bounded by 2).
  const size_t e = static_cast<size_t>(edge);
  const int64_t parents_cur =
      db_->table(edges_[e].parent_table).NumTuples();
  const int64_t zero_cur = parents_cur - dist_[e].TotalMass();
  const int64_t zero_tgt = target_parents_[e] - target_[e].TotalMass();
  const int64_t n = std::max<int64_t>(1, target_parents_[e]);
  return static_cast<double>(dist_[e].L1Distance(target_[e]) +
                             std::llabs(zero_cur - zero_tgt)) /
         static_cast<double>(n);
}

double DegreeDistributionTool::Error() const {
  if (edges_.empty() || db_ == nullptr) return 0.0;
  double sum = 0;
  for (size_t e = 0; e < edges_.size(); ++e) {
    sum += EdgeError(static_cast<int>(e));
  }
  return sum / static_cast<double>(edges_.size());
}

double DegreeDistributionTool::ValidationPenalty(
    const Modification& mod) const {
  if (db_ == nullptr) return 0.0;
  const int table = db_->schema().TableIndex(mod.table);
  double penalty = 0;
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge& edge = edges_[e];
    if (edge.child_table != table) continue;
    // Per-parent degree deltas this modification would cause.
    std::map<TupleId, int64_t> deltas;
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues: {
        const Column& col = db_->table(table).column(edge.fk_col);
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          if (mod.cols[cj] != edge.fk_col) continue;
          for (const TupleId t : mod.tuples) {
            if (col.IsValue(t)) --deltas[col.GetInt(t)];
            if (mod.kind != OpKind::kDeleteValues &&
                !mod.values[cj].is_null()) {
              ++deltas[mod.values[cj].int64()];
            }
          }
        }
        break;
      }
      case OpKind::kInsertTuple: {
        const Value& v = mod.values[static_cast<size_t>(edge.fk_col)];
        if (!v.is_null()) ++deltas[v.int64()];
        break;
      }
      case OpKind::kDeleteTuple: {
        const Column& col = db_->table(table).column(edge.fk_col);
        if (col.IsValue(mod.tuples[0])) --deltas[col.GetInt(mod.tuples[0])];
        break;
      }
    }
    // Error delta from moving each touched parent between histogram
    // bins.
    const EdgeState& st = state_[e];
    std::map<int64_t, int64_t> bin_delta;
    for (const auto& [p, delta] : deltas) {
      if (delta == 0) continue;
      const int64_t before =
          p < static_cast<TupleId>(st.degree.size())
              ? st.degree[static_cast<size_t>(p)]
              : 0;
      const int64_t after = before + delta;
      if (before > 0) --bin_delta[before];
      if (after > 0) ++bin_delta[after];
    }
    const int64_t n = std::max<int64_t>(1, target_parents_[e]);
    for (const auto& [d, delta] : bin_delta) {
      if (delta == 0) continue;
      const int64_t cur = dist_[e].Count({d});
      const int64_t tgt = target_[e].Count({d});
      penalty += static_cast<double>(std::llabs(cur + delta - tgt) -
                                     std::llabs(cur - tgt)) /
                 static_cast<double>(n);
    }
  }
  return penalty / static_cast<double>(edges_.size());
}

Status DegreeDistributionTool::RepairTarget() {
  if (!bound()) return Status::Invalid("degree: RepairTarget needs Bind");
  for (size_t e = 0; e < edges_.size(); ++e) {
    FrequencyDistribution& tgt = target_[e];
    target_parents_[e] = db_->table(edges_[e].parent_table).NumTuples();
    // (D2): at most |P| parents may have children.
    while (tgt.TotalMass() > target_parents_[e] && tgt.NumKeys() >= 2) {
      // Merge the two smallest-degree bins into their sum.
      const auto a = tgt.counts().begin()->first;
      const auto b = std::next(tgt.counts().begin())->first;
      tgt.Add(a, -1);
      tgt.Add(b, -1);
      tgt.Add({a[0] + b[0]}, 1);
    }
    // (D1): weighted sum must equal |C|.
    const int64_t want = db_->table(edges_[e].child_table).NumTuples();
    int64_t d = want - tgt.WeightedSum(0);
    while (d > 0 && tgt.TotalMass() < target_parents_[e]) {
      tgt.Add({1}, 1);
      --d;
    }
    if (d > 0 && tgt.NumKeys() > 0) {
      // No spare parents: pile the remainder onto the largest bin.
      const auto last = std::prev(tgt.counts().end())->first;
      tgt.Add(last, -1);
      tgt.Add({last[0] + d}, 1);
      d = 0;
    }
    while (d < 0) {
      FrequencyDistribution::Key victim;
      for (const auto& [k, c] : tgt.counts()) {
        if (k[0] > 0 && c > 0) victim = k;  // prefer the largest degree
      }
      if (victim.empty()) break;
      tgt.Add(victim, -1);
      if (victim[0] > 1) tgt.Add({victim[0] - 1}, 1);
      ++d;
    }
  }
  return Status::OK();
}

Status DegreeDistributionTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("degree: needs Bind");
  for (size_t e = 0; e < edges_.size(); ++e) {
    for (const auto& [k, c] : target_[e].counts()) {
      if (c < 0 || k[0] < 1) {
        return Status::Infeasible("degree: bad target bin");
      }
    }
    if (target_[e].WeightedSum(0) !=
        db_->table(edges_[e].child_table).NumTuples()) {
      return Status::Infeasible(StrFormat("degree: D1 violated (edge %zu)",
                                          e));
    }
    if (target_[e].TotalMass() >
        db_->table(edges_[e].parent_table).NumTuples()) {
      return Status::Infeasible(StrFormat("degree: D2 violated (edge %zu)",
                                          e));
    }
  }
  return Status::OK();
}

std::vector<int64_t> DegreeDistributionTool::TargetDegreeSequence(
    int edge) const {
  const size_t e = static_cast<size_t>(edge);
  std::vector<int64_t> seq;
  for (const auto& [k, c] : target_[e].counts()) {
    for (int64_t i = 0; i < c; ++i) seq.push_back(k[0]);
  }
  const int64_t parents = db_->table(edges_[e].parent_table).NumTuples();
  while (static_cast<int64_t>(seq.size()) < parents) seq.push_back(0);
  std::sort(seq.rbegin(), seq.rend());
  return seq;
}

Status DegreeDistributionTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("degree: Tweak needs Bind");
  for (size_t e = 0; e < edges_.size(); ++e) {
    const FkEdge& edge = edges_[e];
    const Table& parent = db_->table(edge.parent_table);
    const Table& child = db_->table(edge.child_table);
    EdgeState& st = state_[e];

    // Rank-match the current degree sequence to the target sequence:
    // sorting both minimizes the number of re-pointed children.
    std::vector<TupleId> parents;
    parent.ForEachLive([&](TupleId p) { parents.push_back(p); });
    std::stable_sort(parents.begin(), parents.end(),
                     [&](TupleId a, TupleId b) {
                       return st.degree[static_cast<size_t>(a)] >
                              st.degree[static_cast<size_t>(b)];
                     });
    const std::vector<int64_t> want = TargetDegreeSequence(static_cast<int>(e));
    if (want.size() < parents.size()) continue;  // infeasible target

    std::vector<std::pair<TupleId, int64_t>> donors;    // parent, excess
    std::vector<std::pair<TupleId, int64_t>> receivers;  // parent, need
    for (size_t r = 0; r < parents.size(); ++r) {
      const int64_t have = st.degree[static_cast<size_t>(parents[r])];
      const int64_t need = want[r];
      if (have > need) donors.emplace_back(parents[r], have - need);
      if (have < need) receivers.emplace_back(parents[r], need - have);
    }
    size_t di = 0;
    int veto_budget = max_attempts_;
    for (auto& [receiver, need] : receivers) {
      while (need > 0) {
        while (di < donors.size() && donors[di].second == 0) ++di;
        if (di >= donors.size()) break;
        auto& [donor, excess] = donors[di];
        const auto cit = st.children.find(donor);
        if (cit == st.children.end() || cit->second.empty()) {
          excess = 0;
          continue;
        }
        // Pick a child of the donor, trying alternatives on veto.
        const auto& kids = cit->second;
        const TupleId moved = kids[static_cast<size_t>(
            ctx->rng()->UniformInt(0, static_cast<int64_t>(kids.size()) - 1))];
        Modification mod = Modification::ReplaceValues(
            child.name(), {moved}, {edge.fk_col},
            {Value(static_cast<int64_t>(receiver))});
        Status s = ctx->TryApply(mod);
        if (s.IsValidationFailed()) {
          if (veto_budget-- > 0) continue;
          s = ctx->ForceApply(mod);
        }
        ASPECT_RETURN_NOT_OK(s);
        --need;
        --excess;
      }
    }
  }
  return Status::OK();
}

Status DegreeDistributionTool::SaveTarget(std::ostream* out) const {
  *out << "degree " << edges_.size() << "\n";
  for (size_t e = 0; e < edges_.size(); ++e) {
    *out << "edge " << target_parents_[e] << "\n";
    target_[e].Write(out);
  }
  return Status::OK();
}

Status DegreeDistributionTool::LoadTarget(std::istream* in) {
  std::string tag;
  size_t n = 0;
  if (!(*in >> tag >> n) || tag != "degree" || n != edges_.size()) {
    return Status::IoError("degree: bad target header");
  }
  for (size_t e = 0; e < n; ++e) {
    if (!(*in >> tag >> target_parents_[e]) || tag != "edge") {
      return Status::IoError("degree: bad edge header");
    }
    ASPECT_ASSIGN_OR_RETURN(target_[e], FrequencyDistribution::Read(in));
    if (target_[e].dim() != 1) {
      return Status::IoError("degree: distribution dim mismatch");
    }
  }
  return Status::OK();
}

}  // namespace aspect
