// CoappearPropertyTool: enforces the coappear property (Sec. V-B).
//
// For each coappear group (tables T1..Tk referencing the same parents
// T'1..T'm) the property is the distribution xi(v1..vk) = number of
// distinct foreign-key combinations b = (b1..bm) that appear vi times
// in table Ti (Definition 4). The all-zero vector is implicit:
// xi(0..0) = prod |T'j| - sum of the stored counts (Theorem 2, C2).
//
// The tweaking algorithm is Algorithm 2: for every deficit vector v it
// repeatedly picks the Manhattan-closest surplus vector v', selects a
// combination b currently realizing v', and inserts/deletes tuples
// with foreign keys b until b realizes v.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "relational/refcount.h"
#include "relational/refgraph.h"
#include "stats/freq_dist.h"

namespace aspect {

class CoappearPropertyTool : public PropertyTool {
 public:
  explicit CoappearPropertyTool(const Schema& schema);

  std::string name() const override { return "coappear"; }

  /// Custom clone: the refcount cache is non-copyable bound state.
  std::unique_ptr<PropertyTool> Clone() const override;

  Status SetTargetFromDataset(const Database& ground_truth) override;
  /// User-input mode: explicit target distributions, one per group (in
  /// `groups()` order), plus the target parent sizes used for the
  /// implicit zero vector.
  Status SetTargetDistributions(
      std::vector<FrequencyDistribution> targets,
      std::vector<std::vector<int64_t>> target_parent_sizes,
      std::vector<std::vector<int64_t>> target_member_sizes);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;
  Status SaveTarget(std::ostream* out) const override;
  Status LoadTarget(std::istream* in) override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics (GroupState) are keyed by stable tuple ids and slot
  /// indices, so a content-identical database swap needs no rebuild:
  /// pointer swap for the tool and its RefCounter, both re-registered
  /// as listeners on the new database.
  Status Rebase(Database* db) override;
  /// The tool plus its RefCounter (the auxiliary listener Bind
  /// installs).
  void AppendListeners(std::vector<ModificationListener*>* out) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: transitions of all modifications are
  /// simulated against one shared overlay, so several tuples of the
  /// batch moving onto (or off) the same combo are priced jointly.
  /// Assumes disjoint tuples (the ApplyBatch caller contract).
  /// `veto_cap` licenses an early exit: one transition moves each
  /// group's penalty numerator by at most 4 (two combo adjusts, each
  /// touching at most two xi entries by one), so once the running
  /// exact numerators minus the remaining 4/N_FK movement budget
  /// provably clear the cap, the tail is left unpriced and that lower
  /// bound is returned. A batch priced to completion goes through the
  /// same final pricing loop as the uncapped path, bit for bit.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  /// Whole-table row structure of member tables (inserts/deletes copy
  /// entire template rows), whole-table reads of parent tables (combo
  /// sampling and the implicit-zero space), and the FK columns of
  /// tables referencing a member (reference evacuation).
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  const std::vector<CoappearGroup>& groups() const { return groups_; }
  /// Current distribution of group g (stored, zero vector implicit).
  const FrequencyDistribution& CurrentXi(int g) const {
    return xi_[static_cast<size_t>(g)];
  }
  const FrequencyDistribution& TargetXi(int g) const {
    return target_xi_[static_cast<size_t>(g)];
  }

 private:
  using Key = FrequencyDistribution::Key;  // combo b or vector v

  struct GroupState {
    // combo b -> appearance vector v (per member); absent == all-zero.
    std::map<Key, Key> combo_vec;
    // vector v -> combos currently realizing it.
    std::map<Key, std::vector<Key>> buckets;
    // per member: combo -> tuple ids carrying it.
    std::vector<std::map<Key, std::vector<TupleId>>> tuples_by_combo;
    // per member: tuple slot -> its combo (empty key = not counted).
    std::vector<std::vector<Key>> tuple_combo;
  };

  /// One member-tuple transition: tuple of member `member` changes its
  /// combo from `old_b` to `new_b` (either may be empty = uncounted).
  struct Transition {
    int group;
    int member;
    TupleId tuple;
    Key old_b;
    Key new_b;
  };

  std::vector<Transition> CollectTransitions(const Modification& mod,
                                             TupleId new_tuple,
                                             bool pre_apply) const;
  void ApplyTransitions(const std::vector<Transition>& ts);
  /// Simulated error change of applying `ts` (shared across the single
  /// and batch validation paths). A finite `veto_cap` allows stopping
  /// as soon as the final penalty is provably above the cap, returning
  /// a conservative lower bound that is itself above the cap.
  double PenaltyOfTransitions(const std::vector<Transition>& ts,
                              double veto_cap = kNoPenaltyCap) const;

  /// Reads the combo of a member tuple from the database (empty key if
  /// any FK cell is not a value). With `overlay`, the given columns
  /// take the proposed values instead (pre-apply simulation).
  Key ReadCombo(int g, int member, TupleId t,
                const std::vector<int>* overlay_cols,
                const std::vector<Value>* overlay_vals,
                bool deleted_cells) const;

  /// Current count of vector v in group g, including the implicit
  /// zero vector.
  int64_t CurrentCount(int g, const Key& v) const;
  int64_t TargetCount(int g, const Key& v) const;
  /// Number of possible combos = product of parent sizes.
  int64_t CurrentComboSpace(int g) const;

  double GroupError(int g) const;

  /// One Algorithm-2 unit: convert one combo from vector `from` to
  /// vector `to` in group g. Returns false if no combo realizes
  /// `from` (or no fresh combo can be sampled when `from` is zero).
  bool ConvertOne(TweakContext* ctx, int g, const Key& from, const Key& to);

  Status ProposeOrForce(TweakContext* ctx, const Modification& mod,
                        int* veto_budget, TupleId* new_tuple = nullptr);

  /// Re-points every inbound foreign key referencing `victim` of table
  /// `table_index` to another live tuple, so the victim becomes
  /// deletable. Members that are post tables need this when their
  /// tuples carry responses (the overlapping-property case of
  /// Sec. VII-A). Returns false if no survivor tuple exists.
  bool EvacuateReferences(TweakContext* ctx, int table_index,
                          TupleId victim);

  Schema schema_;
  std::vector<CoappearGroup> groups_;
  // (table, col) -> (group, member, col position within combo).
  std::map<std::pair<int, int>, std::vector<std::tuple<int, int, int>>>
      fk_index_;
  // table -> (group, member) memberships.
  std::map<int, std::vector<std::pair<int, int>>> member_index_;
  // table -> FK edges referencing it (for reference evacuation).
  std::map<int, std::vector<FkEdge>> inbound_;

  Database* db_ = nullptr;
  std::vector<GroupState> state_;
  std::vector<FrequencyDistribution> xi_;
  // Deletion victims must be unreferenced (members can be post tables
  // that response tables reference, e.g. Review in the Douban schemas).
  std::unique_ptr<RefCounter> refcount_;

  std::vector<FrequencyDistribution> target_xi_;
  std::vector<std::vector<int64_t>> target_parent_sizes_;
  std::vector<std::vector<int64_t>> target_member_sizes_;
  int max_attempts_ = 24;
};

}  // namespace aspect
