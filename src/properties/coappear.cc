#include "properties/coappear.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace aspect {
namespace {

bool AllZero(const FrequencyDistribution::Key& v) {
  for (const int64_t x : v) {
    if (x != 0) return false;
  }
  return true;
}

}  // namespace

CoappearPropertyTool::CoappearPropertyTool(const Schema& schema)
    : schema_(schema) {
  ReferenceGraph graph(schema_);
  groups_ = graph.CoappearGroups();
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CoappearGroup& grp = groups_[g];
    xi_.emplace_back(static_cast<int>(grp.member_tables.size()));
    target_xi_.emplace_back(static_cast<int>(grp.member_tables.size()));
    for (size_t mi = 0; mi < grp.member_tables.size(); ++mi) {
      member_index_[grp.member_tables[mi]].emplace_back(
          static_cast<int>(g), static_cast<int>(mi));
      for (size_t p = 0; p < grp.member_fk_cols[mi].size(); ++p) {
        fk_index_[{grp.member_tables[mi], grp.member_fk_cols[mi][p]}]
            .emplace_back(static_cast<int>(g), static_cast<int>(mi),
                          static_cast<int>(p));
      }
    }
  }
  target_parent_sizes_.resize(groups_.size());
  target_member_sizes_.resize(groups_.size());
  for (const FkEdge& e : graph.edges()) {
    inbound_[e.parent_table].push_back(e);
  }
}

Status CoappearPropertyTool::SetTargetFromDataset(
    const Database& ground_truth) {
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CoappearGroup& grp = groups_[g];
    FrequencyDistribution xi(static_cast<int>(grp.member_tables.size()));
    std::map<Key, Key> combos;
    for (size_t mi = 0; mi < grp.member_tables.size(); ++mi) {
      const Table& t = ground_truth.table(grp.member_tables[mi]);
      t.ForEachLive([&](TupleId tid) {
        Key b;
        for (const int col : grp.member_fk_cols[mi]) {
          if (!t.column(col).IsValue(tid)) return;
          b.push_back(t.column(col).GetInt(tid));
        }
        auto [it, inserted] = combos.try_emplace(
            b, Key(grp.member_tables.size(), 0));
        ++it->second[mi];
      });
    }
    for (const auto& [b, v] : combos) xi.Add(v, 1);
    target_xi_[g] = std::move(xi);
    target_parent_sizes_[g].clear();
    for (const int p : grp.parent_tables) {
      target_parent_sizes_[g].push_back(ground_truth.table(p).NumTuples());
    }
    target_member_sizes_[g].clear();
    for (const int m : grp.member_tables) {
      target_member_sizes_[g].push_back(ground_truth.table(m).NumTuples());
    }
  }
  return Status::OK();
}

Status CoappearPropertyTool::SetTargetDistributions(
    std::vector<FrequencyDistribution> targets,
    std::vector<std::vector<int64_t>> target_parent_sizes,
    std::vector<std::vector<int64_t>> target_member_sizes) {
  if (targets.size() != groups_.size() ||
      target_parent_sizes.size() != groups_.size() ||
      target_member_sizes.size() != groups_.size()) {
    return Status::Invalid("coappear: wrong number of group targets");
  }
  target_xi_ = std::move(targets);
  target_parent_sizes_ = std::move(target_parent_sizes);
  target_member_sizes_ = std::move(target_member_sizes);
  return Status::OK();
}

std::unique_ptr<PropertyTool> CoappearPropertyTool::Clone() const {
  if (bound()) return nullptr;
  // The constructor rebuilds groups_ and the index maps from the
  // schema; only the targets need copying.
  auto copy = std::make_unique<CoappearPropertyTool>(schema_);
  copy->target_xi_ = target_xi_;
  copy->target_parent_sizes_ = target_parent_sizes_;
  copy->target_member_sizes_ = target_member_sizes_;
  copy->max_attempts_ = max_attempts_;
  return copy;
}

Status CoappearPropertyTool::Bind(Database* db) {
  db_ = db;
  state_.assign(groups_.size(), GroupState{});
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CoappearGroup& grp = groups_[g];
    GroupState& st = state_[g];
    xi_[g].Clear();
    st.tuples_by_combo.resize(grp.member_tables.size());
    st.tuple_combo.resize(grp.member_tables.size());
    for (size_t mi = 0; mi < grp.member_tables.size(); ++mi) {
      const Table& t = db_->table(grp.member_tables[mi]);
      st.tuple_combo[mi].assign(static_cast<size_t>(t.NumSlots()), Key{});
      t.ForEachLive([&](TupleId tid) {
        const Key b = ReadCombo(static_cast<int>(g), static_cast<int>(mi),
                                tid, nullptr, nullptr, false);
        if (b.empty()) return;
        st.tuple_combo[mi][static_cast<size_t>(tid)] = b;
        st.tuples_by_combo[mi][b].push_back(tid);
        auto [it, inserted] = st.combo_vec.try_emplace(
            b, Key(grp.member_tables.size(), 0));
        if (!AllZero(it->second)) xi_[g].Add(it->second, -1);
        ++it->second[mi];
        xi_[g].Add(it->second, 1);
      });
    }
    for (const auto& [b, v] : st.combo_vec) {
      st.buckets[v].push_back(b);
    }
  }
  refcount_ = std::make_unique<RefCounter>(db_);
  db_->AddListener(this);
  return Status::OK();
}

void CoappearPropertyTool::Unbind() {
  refcount_.reset();
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
  state_.clear();
}

Status CoappearPropertyTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  if (db == db_) return Status::OK();
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  // The refcount cache swaps with its owner. Its counts are exact for
  // every table whose inbound FK columns are in this tool's declared
  // scope — the member tables, which is all Tweak ever queries.
  refcount_->Rebase(db);
  return Status::OK();
}

void CoappearPropertyTool::AppendListeners(
    std::vector<ModificationListener*>* out) {
  out->push_back(this);
  if (refcount_ != nullptr) out->push_back(refcount_.get());
}

CoappearPropertyTool::Key CoappearPropertyTool::ReadCombo(
    int g, int member, TupleId t, const std::vector<int>* overlay_cols,
    const std::vector<Value>* overlay_vals, bool deleted_cells) const {
  const CoappearGroup& grp = groups_[static_cast<size_t>(g)];
  const Table& table =
      db_->table(grp.member_tables[static_cast<size_t>(member)]);
  Key b;
  for (const int col :
       grp.member_fk_cols[static_cast<size_t>(member)]) {
    int overlay = -1;
    if (overlay_cols != nullptr) {
      for (size_t j = 0; j < overlay_cols->size(); ++j) {
        if ((*overlay_cols)[j] == col) {
          overlay = static_cast<int>(j);
          break;
        }
      }
    }
    if (overlay >= 0) {
      if (deleted_cells) return Key{};  // cell proposed to be erased
      const Value& v = (*overlay_vals)[static_cast<size_t>(overlay)];
      if (v.is_null()) return Key{};
      b.push_back(v.int64());
    } else {
      if (t >= table.NumSlots() || !table.column(col).IsValue(t)) {
        return Key{};
      }
      b.push_back(table.column(col).GetInt(t));
    }
  }
  return b;
}

std::vector<CoappearPropertyTool::Transition>
CoappearPropertyTool::CollectTransitions(const Modification& mod,
                                         TupleId new_tuple,
                                         bool pre_apply) const {
  std::vector<Transition> out;
  const int table = db_->schema().TableIndex(mod.table);
  const auto mit = member_index_.find(table);
  if (mit == member_index_.end()) return out;

  for (const auto& [g, mi] : mit->second) {
    const GroupState& st = state_[static_cast<size_t>(g)];
    const auto& fk_cols =
        groups_[static_cast<size_t>(g)].member_fk_cols[static_cast<size_t>(mi)];
    auto cached = [&](TupleId t) -> Key {
      const auto& cache = st.tuple_combo[static_cast<size_t>(mi)];
      return t < static_cast<TupleId>(cache.size())
                 ? cache[static_cast<size_t>(t)]
                 : Key{};
    };
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues: {
        // Skip if no group FK column is touched.
        bool touches = false;
        for (const int c : mod.cols) {
          touches |= std::find(fk_cols.begin(), fk_cols.end(), c) !=
                     fk_cols.end();
        }
        if (!touches) break;
        for (const TupleId t : mod.tuples) {
          Transition tr;
          tr.group = g;
          tr.member = mi;
          tr.tuple = t;
          tr.old_b = cached(t);
          if (pre_apply) {
            tr.new_b = ReadCombo(g, mi, t, &mod.cols, &mod.values,
                                 mod.kind == OpKind::kDeleteValues);
          } else {
            tr.new_b = ReadCombo(g, mi, t, nullptr, nullptr, false);
          }
          if (tr.old_b != tr.new_b) out.push_back(std::move(tr));
        }
        break;
      }
      case OpKind::kInsertTuple: {
        Transition tr;
        tr.group = g;
        tr.member = mi;
        tr.tuple = new_tuple != kInvalidTuple
                       ? new_tuple
                       : db_->table(table).NumSlots();
        for (const int col : fk_cols) {
          const Value& v = mod.values[static_cast<size_t>(col)];
          if (v.is_null()) {
            tr.new_b.clear();
            break;
          }
          tr.new_b.push_back(v.int64());
        }
        if (!tr.new_b.empty()) out.push_back(std::move(tr));
        break;
      }
      case OpKind::kDeleteTuple: {
        Transition tr;
        tr.group = g;
        tr.member = mi;
        tr.tuple = mod.tuples[0];
        tr.old_b = cached(tr.tuple);
        if (!tr.old_b.empty()) out.push_back(std::move(tr));
        break;
      }
    }
  }
  return out;
}

void CoappearPropertyTool::ApplyTransitions(
    const std::vector<Transition>& ts) {
  for (const Transition& tr : ts) {
    GroupState& st = state_[static_cast<size_t>(tr.group)];
    const CoappearGroup& grp = groups_[static_cast<size_t>(tr.group)];
    auto& cache = st.tuple_combo[static_cast<size_t>(tr.member)];
    if (tr.tuple >= static_cast<TupleId>(cache.size())) {
      cache.resize(static_cast<size_t>(tr.tuple) + 1, Key{});
    }
    auto adjust = [&](const Key& b, int64_t delta) {
      if (b.empty()) return;
      auto [it, inserted] =
          st.combo_vec.try_emplace(b, Key(grp.member_tables.size(), 0));
      Key& vec = it->second;
      auto debucket = [&]() {
        auto& bucket = st.buckets[vec];
        bucket.erase(std::find(bucket.begin(), bucket.end(), b));
        if (bucket.empty()) st.buckets.erase(vec);
      };
      if (!AllZero(vec)) {
        xi_[static_cast<size_t>(tr.group)].Add(vec, -1);
        debucket();
      }
      vec[static_cast<size_t>(tr.member)] += delta;
      assert(vec[static_cast<size_t>(tr.member)] >= 0);
      if (AllZero(vec)) {
        st.combo_vec.erase(it);
      } else {
        xi_[static_cast<size_t>(tr.group)].Add(vec, 1);
        st.buckets[vec].push_back(b);
      }
      // Per-member tuple lists.
      auto& by_combo = st.tuples_by_combo[static_cast<size_t>(tr.member)];
      if (delta > 0) {
        by_combo[b].push_back(tr.tuple);
      } else {
        auto& list = by_combo[b];
        list.erase(std::find(list.begin(), list.end(), tr.tuple));
        if (list.empty()) by_combo.erase(b);
      }
    };
    adjust(tr.old_b, -1);
    adjust(tr.new_b, +1);
    cache[static_cast<size_t>(tr.tuple)] = tr.new_b;
  }
}

void CoappearPropertyTool::OnApplied(const Modification& mod,
                                     const std::vector<Value>& old_values,
                                     TupleId new_tuple) {
  (void)old_values;  // combos come from the pre-apply cache
  if (db_ == nullptr) return;
  ApplyTransitions(CollectTransitions(mod, new_tuple, /*pre_apply=*/false));
}

int64_t CoappearPropertyTool::CurrentComboSpace(int g) const {
  int64_t space = 1;
  for (const int p : groups_[static_cast<size_t>(g)].parent_tables) {
    space *= db_->table(p).NumTuples();
  }
  return space;
}

int64_t CoappearPropertyTool::CurrentCount(int g, const Key& v) const {
  if (AllZero(v)) {
    return CurrentComboSpace(g) -
           static_cast<int64_t>(
               state_[static_cast<size_t>(g)].combo_vec.size());
  }
  return xi_[static_cast<size_t>(g)].Count(v);
}

int64_t CoappearPropertyTool::TargetCount(int g, const Key& v) const {
  if (AllZero(v)) {
    int64_t space = 1;
    for (const int64_t s : target_parent_sizes_[static_cast<size_t>(g)]) {
      space *= s;
    }
    return space - target_xi_[static_cast<size_t>(g)].TotalMass();
  }
  return target_xi_[static_cast<size_t>(g)].Count(v);
}

double CoappearPropertyTool::GroupError(int g) const {
  // epsilon_xi = (1/N_FK) sum_v |xi(v) - xi~(v)| over observed vectors,
  // where N_FK is the number of distinct foreign-key combinations in
  // the target - this is the normalization that makes the paper's
  // bound of 2 tight (Sec. VI-C1).
  const int64_t n_fk =
      std::max<int64_t>(1, target_xi_[static_cast<size_t>(g)].TotalMass());
  const int64_t sum = xi_[static_cast<size_t>(g)].L1Distance(
      target_xi_[static_cast<size_t>(g)]);
  return static_cast<double>(sum) / static_cast<double>(n_fk);
}

double CoappearPropertyTool::Error() const {
  if (groups_.empty() || db_ == nullptr) return 0.0;
  double sum = 0;
  for (size_t g = 0; g < groups_.size(); ++g) {
    sum += GroupError(static_cast<int>(g));
  }
  return sum / static_cast<double>(groups_.size());
}

double CoappearPropertyTool::ValidationPenalty(
    const Modification& mod) const {
  if (db_ == nullptr) return 0.0;
  const std::vector<Transition> ts =
      CollectTransitions(mod, kInvalidTuple, /*pre_apply=*/true);
  return PenaltyOfTransitions(ts);
}

double CoappearPropertyTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  if (db_ == nullptr) return 0.0;
  std::vector<Transition> ts;
  for (const Modification& mod : mods) {
    std::vector<Transition> one =
        CollectTransitions(mod, kInvalidTuple, /*pre_apply=*/true);
    ts.insert(ts.end(), std::make_move_iterator(one.begin()),
              std::make_move_iterator(one.end()));
  }
  return PenaltyOfTransitions(ts, veto_cap);
}

AccessScope CoappearPropertyTool::DeclaredScope() const {
  AccessScope scope;
  scope.known = true;
  for (const CoappearGroup& grp : groups_) {
    for (const int m : grp.member_tables) {
      scope.AddWrite(m, AccessScope::kWholeTable);
      const auto iit = inbound_.find(m);
      if (iit == inbound_.end()) continue;
      for (const FkEdge& e : iit->second) {
        scope.AddWrite(e.child_table, e.fk_col);
        // Rewiring scans the child table's live-tuple set, and the
        // combo vectors count one entry per live child row.
        scope.AddRead(e.child_table, AccessScope::kRowStructure);
      }
    }
    for (const int p : grp.parent_tables) {
      scope.AddRead(p, AccessScope::kWholeTable);
    }
  }
  return scope;
}

double CoappearPropertyTool::PenaltyOfTransitions(
    const std::vector<Transition>& ts, double veto_cap) const {
  if (ts.empty()) return 0.0;
  const bool capped = veto_cap != kNoPenaltyCap;
  // Per group, per vector: delta of xi caused by the transitions.
  std::map<std::pair<int, Key>, int64_t> xi_delta;
  std::map<int, int64_t> zero_delta;
  // Simulated per-combo vectors.
  std::map<std::pair<int, Key>, Key> sim_vec;
  auto vec_of = [&](int g, const Key& b) -> Key {
    const auto sit = sim_vec.find({g, b});
    if (sit != sim_vec.end()) return sit->second;
    const auto& cv = state_[static_cast<size_t>(g)].combo_vec;
    const auto it = cv.find(b);
    return it == cv.end()
               ? Key(groups_[static_cast<size_t>(g)].member_tables.size(), 0)
               : it->second;
  };
  auto n_fk_of = [&](int g) -> double {
    return static_cast<double>(std::max<int64_t>(
        1, target_xi_[static_cast<size_t>(g)].TotalMass()));
  };
  // Capped pricing keeps each group's partial penalty numerator exact
  // (in integers): the final loop's |cur+delta-tgt| - |cur-tgt| term,
  // summed over this group's xi_delta keys, re-adjusted on every delta
  // change. The early-exit test then sums a handful of exact integer
  // numerators instead of accumulating a drifting float.
  std::map<int, int64_t> group_num;
  auto term_of = [&](int g, const Key& vec, int64_t delta) -> int64_t {
    const int64_t cur = xi_[static_cast<size_t>(g)].Count(vec);
    const int64_t tgt = target_xi_[static_cast<size_t>(g)].Count(vec);
    return std::llabs(cur + delta - tgt) - std::llabs(cur - tgt);
  };
  // suffix[i] bounds how much the numerators can still move pricing
  // ts[i..): one transition makes two combo adjusts, each touching at
  // most two xi entries by +-1, and a +-1 delta change moves its term
  // by at most 1 — so at most 4/n_fk per transition. (Adjusts that
  // land on the implicit zero vector touch fewer entries; the bound
  // still covers them.)
  std::vector<double> suffix;
  if (capped) {
    suffix.assign(ts.size() + 1, 0.0);
    for (size_t i = ts.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + 4.0 / n_fk_of(ts[i].group);
    }
  }
  for (size_t ti = 0; ti < ts.size(); ++ti) {
    const Transition& tr = ts[ti];
    auto adjust = [&](const Key& b, int64_t delta) {
      if (b.empty()) return;
      Key vec = vec_of(tr.group, b);
      auto bump = [&](const Key& v, int64_t d) {
        int64_t& slot = xi_delta[{tr.group, v}];
        if (capped) group_num[tr.group] -= term_of(tr.group, v, slot);
        slot += d;
        if (capped) group_num[tr.group] += term_of(tr.group, v, slot);
      };
      if (!AllZero(vec)) {
        bump(vec, -1);
      } else {
        zero_delta[tr.group] -= 1;
      }
      vec[static_cast<size_t>(tr.member)] += delta;
      if (!AllZero(vec)) {
        bump(vec, +1);
      } else {
        zero_delta[tr.group] += 1;
      }
      sim_vec[{tr.group, b}] = vec;
    };
    adjust(tr.old_b, -1);
    adjust(tr.new_b, +1);
    if (capped) {
      double running = 0;
      for (const auto& [g, num] : group_num) {
        running += static_cast<double>(num) / n_fk_of(g);
      }
      const double floor_penalty = (running - suffix[ti + 1]) /
                                   static_cast<double>(groups_.size());
      if (floor_penalty >
          veto_cap + kPenaltyCapSlack * (1.0 + std::fabs(veto_cap))) {
        return floor_penalty;
      }
    }
  }
  (void)zero_delta;  // the zero vector is excluded from the measure
  double penalty = 0;
  for (const auto& [gk, delta] : xi_delta) {
    if (delta == 0) continue;
    const auto& [g, vec] = gk;
    const int64_t cur = xi_[static_cast<size_t>(g)].Count(vec);
    const int64_t tgt = target_xi_[static_cast<size_t>(g)].Count(vec);
    const int64_t n_fk =
        std::max<int64_t>(1, target_xi_[static_cast<size_t>(g)].TotalMass());
    penalty += static_cast<double>(std::llabs(cur + delta - tgt) -
                                   std::llabs(cur - tgt)) /
               static_cast<double>(n_fk);
  }
  return penalty / static_cast<double>(groups_.size());
}

Status CoappearPropertyTool::RepairTarget() {
  if (!bound()) return Status::Invalid("coappear: RepairTarget needs Bind");
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CoappearGroup& grp = groups_[g];
    FrequencyDistribution& tgt = target_xi_[g];
    // Zero-vector bookkeeping now refers to the bound parent domain.
    target_parent_sizes_[g].clear();
    for (const int p : grp.parent_tables) {
      target_parent_sizes_[g].push_back(db_->table(p).NumTuples());
    }
    target_member_sizes_[g].clear();
    for (const int m : grp.member_tables) {
      target_member_sizes_[g].push_back(db_->table(m).NumTuples());
    }
    // C2: the number of distinct combos cannot exceed the combo space.
    int64_t space = 1;
    for (const int64_t s : target_parent_sizes_[g]) space *= s;
    while (tgt.TotalMass() > space && tgt.NumKeys() >= 2) {
      // Merge two combos into one (vector sum): preserves the
      // weighted sums of C1 while freeing one combo slot.
      const auto a = tgt.counts().begin()->first;
      auto second = std::next(tgt.counts().begin());
      const auto b = second->first;
      Key merged(a.size());
      for (size_t i = 0; i < a.size(); ++i) merged[i] = a[i] + b[i];
      tgt.Add(a, -1);
      tgt.Add(b, -1);
      tgt.Add(merged, 1);
    }
    // C1: sum_v v_i xi~(v) must equal the bound member sizes.
    for (size_t mi = 0; mi < grp.member_tables.size(); ++mi) {
      int64_t deficit = target_member_sizes_[g][mi] -
                        tgt.WeightedSum(static_cast<int>(mi));
      if (deficit > 0) {
        Key unit(grp.member_tables.size(), 0);
        unit[mi] = 1;
        tgt.Add(unit, deficit);
      }
      while (deficit < 0) {
        // Take one appearance in member mi away from some combo.
        Key victim;
        for (const auto& [v, c] : tgt.counts()) {
          if (v[mi] > 0 && c > 0) {
            victim = v;
            // Prefer vectors with the largest count in this member so
            // few keys change.
            if (v[mi] > 1) break;
          }
        }
        if (victim.empty()) break;  // cannot repair further
        Key reduced = victim;
        --reduced[mi];
        tgt.Add(victim, -1);
        if (!AllZero(reduced)) tgt.Add(reduced, 1);
        ++deficit;
      }
    }
  }
  return Status::OK();
}

Status CoappearPropertyTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("coappear: needs Bind");
  for (size_t g = 0; g < groups_.size(); ++g) {
    const CoappearGroup& grp = groups_[g];
    const FrequencyDistribution& tgt = target_xi_[g];
    for (const auto& [v, c] : tgt.counts()) {
      if (c < 0) return Status::Infeasible("negative target count");
    }
    for (size_t mi = 0; mi < grp.member_tables.size(); ++mi) {
      const int64_t want = db_->table(grp.member_tables[mi]).NumTuples();
      if (tgt.WeightedSum(static_cast<int>(mi)) != want) {
        return Status::Infeasible(StrFormat(
            "C1 violated for group %zu member %zu", g, mi));
      }
    }
    int64_t space = 1;
    for (const int p : grp.parent_tables) {
      space *= db_->table(p).NumTuples();
    }
    if (tgt.TotalMass() > space) {
      return Status::Infeasible(StrFormat("C2 violated for group %zu", g));
    }
  }
  return Status::OK();
}

Status CoappearPropertyTool::ProposeOrForce(TweakContext* ctx,
                                            const Modification& mod,
                                            int* veto_budget,
                                            TupleId* new_tuple) {
  Status st = ctx->TryApply(mod, new_tuple);
  if (st.IsValidationFailed()) {
    if (*veto_budget > 0) {
      --*veto_budget;
      return st;
    }
    return ctx->ForceApply(mod, new_tuple);
  }
  return st;
}

bool CoappearPropertyTool::ConvertOne(TweakContext* ctx, int g,
                                      const Key& from, const Key& to) {
  GroupState& st = state_[static_cast<size_t>(g)];
  const CoappearGroup& grp = groups_[static_cast<size_t>(g)];
  const size_t k = grp.member_tables.size();

  // CoappearVectorRetrieve / TupleRetrieve: pick a combo realizing
  // `from` (a fresh combo when `from` is the zero vector). A unit must
  // never half-apply, so a candidate is accepted only if every member
  // with surplus appearances owns enough unreferenced tuples to delete
  // (members can be post tables whose tuples responses reference).
  auto deletable = [&](const Key& cand) {
    for (size_t mi = 0; mi < k; ++mi) {
      const int64_t need = from[mi] - to[mi];
      if (need <= 0) continue;
      const auto lit = st.tuples_by_combo[mi].find(cand);
      if (lit == st.tuples_by_combo[mi].end() ||
          static_cast<int64_t>(lit->second.size()) < need) {
        return false;
      }
      // Referenced tuples count too: their references are evacuated
      // to a survivor before deletion, which therefore must exist.
      if (db_->table(grp.member_tables[mi]).NumTuples() <= need) {
        return false;
      }
    }
    return true;
  };
  Key b;
  if (AllZero(from)) {
    for (int tries = 0; tries < 64 && b.empty(); ++tries) {
      Key cand;
      for (const int p : grp.parent_tables) {
        const int64_t n = db_->table(p).NumTuples();
        if (n == 0) return false;
        const TupleId pick =
            ctx->rng()->UniformInt(0, db_->table(p).NumSlots() - 1);
        if (!db_->table(p).IsLive(pick)) {
          cand.clear();
          break;
        }
        cand.push_back(pick);
      }
      if (!cand.empty() && st.combo_vec.find(cand) == st.combo_vec.end()) {
        b = std::move(cand);
      }
    }
    if (b.empty()) return false;
  } else {
    const auto it = st.buckets.find(from);
    if (it == st.buckets.end() || it->second.empty()) return false;
    const auto& bucket = it->second;
    const size_t offset = static_cast<size_t>(ctx->rng()->UniformInt(
        0, static_cast<int64_t>(bucket.size()) - 1));
    const size_t probes = std::min<size_t>(bucket.size(), 16);
    for (size_t j = 0; j < probes && b.empty(); ++j) {
      const Key& cand = bucket[(offset + j) % bucket.size()];
      if (deletable(cand)) b = cand;
    }
    if (b.empty()) return false;
  }

  // TupleModification: per member, delete surplus / insert missing
  // tuples with foreign keys b.
  int veto_budget = max_attempts_;
  for (size_t mi = 0; mi < k; ++mi) {
    const int64_t have = from[mi];
    const int64_t want = to[mi];
    const Table& table = db_->table(grp.member_tables[mi]);
    const int table_index = grp.member_tables[mi];
    int64_t d = have;
    while (d > want) {
      // Batched deletion: propose all unreferenced victims of this
      // combo as one span (one composite vote, one log segment);
      // fall back to the per-victim escalation path on veto.
      if (ctx->batch_hint() > 1 && d - want > 1) {
        const auto lit = st.tuples_by_combo[mi].find(b);
        if (lit == st.tuples_by_combo[mi].end() || lit->second.empty()) {
          return false;  // statistics drifted; caller re-evaluates
        }
        const auto& list = lit->second;
        const size_t cap = static_cast<size_t>(
            std::min<int64_t>(d - want, ctx->batch_hint()));
        std::vector<Modification> batch;
        const size_t boff = static_cast<size_t>(ctx->rng()->UniformInt(
            0, static_cast<int64_t>(list.size()) - 1));
        for (size_t j = 0; j < list.size() && batch.size() < cap; ++j) {
          const TupleId cand = list[(boff + j) % list.size()];
          if (refcount_->Unreferenced(table_index, cand)) {
            batch.push_back(Modification::DeleteTuple(table.name(), cand));
          }
        }
        if (batch.size() > 1 && ctx->TryApplyBatch(batch).ok()) {
          d -= static_cast<int64_t>(batch.size());
          continue;
        }
      }
      // Delete one tuple carrying combo b, trying alternatives on veto.
      bool deleted = false;
      while (!deleted) {
        const auto lit = st.tuples_by_combo[mi].find(b);
        if (lit == st.tuples_by_combo[mi].end() || lit->second.empty()) {
          return false;  // statistics drifted; caller re-evaluates
        }
        const auto& list = lit->second;
        // Prefer an unreferenced victim; otherwise evacuate one.
        TupleId victim = kInvalidTuple;
        const size_t offset = static_cast<size_t>(
            ctx->rng()->UniformInt(0, static_cast<int64_t>(list.size()) - 1));
        for (size_t j = 0; j < list.size(); ++j) {
          const TupleId cand = list[(offset + j) % list.size()];
          if (refcount_->Unreferenced(table_index, cand)) {
            victim = cand;
            break;
          }
        }
        if (victim == kInvalidTuple) {
          victim = list[offset];
          if (!EvacuateReferences(ctx, table_index, victim)) return false;
        }
        const Status s = ProposeOrForce(
            ctx, Modification::DeleteTuple(table.name(), victim),
            &veto_budget);
        deleted = s.ok();
      }
      --d;
    }
    while (d < want) {
      // Insert tuples with FK values b; non-FK attributes are copied
      // from a random live template tuple. With a batch hint the
      // missing tuples are proposed as one span (one composite vote,
      // one columnar append), degrading to per-tuple force on veto.
      const int64_t pending =
          ctx->batch_hint() > 1
              ? std::min<int64_t>(want - d, ctx->batch_hint())
              : 1;
      std::vector<Modification> batch;
      for (int64_t j = 0; j < pending; ++j) {
        std::vector<Value> row(static_cast<size_t>(table.num_columns()));
        TupleId tmpl = kInvalidTuple;
        if (table.NumTuples() > 0) {
          for (int tries = 0; tries < 32 && tmpl == kInvalidTuple;
               ++tries) {
            const TupleId cand =
                ctx->rng()->UniformInt(0, table.NumSlots() - 1);
            if (table.IsLive(cand)) tmpl = cand;
          }
        }
        for (int c = 0; c < table.num_columns(); ++c) {
          if (tmpl != kInvalidTuple) {
            row[static_cast<size_t>(c)] = table.column(c).Get(tmpl);
          } else if (table.column(c).type() == ColumnType::kString) {
            row[static_cast<size_t>(c)] = Value(std::string());
          } else if (table.column(c).type() == ColumnType::kDouble) {
            row[static_cast<size_t>(c)] = Value(0.0);
          } else {
            row[static_cast<size_t>(c)] = Value(int64_t{0});
          }
        }
        for (size_t p = 0; p < grp.member_fk_cols[mi].size(); ++p) {
          row[static_cast<size_t>(grp.member_fk_cols[mi][p])] = Value(b[p]);
        }
        batch.push_back(Modification::InsertTuple(table.name(), row));
      }
      if (batch.size() > 1 && ctx->TryApplyBatch(batch).ok()) {
        d += static_cast<int64_t>(batch.size());
        continue;
      }
      for (const Modification& mod : batch) {
        Status s = ctx->TryApply(mod);
        if (s.IsValidationFailed()) s = ctx->ForceApply(mod);
        if (!s.ok()) return false;
      }
      d += static_cast<int64_t>(batch.size());
    }
  }
  return true;
}

bool CoappearPropertyTool::EvacuateReferences(TweakContext* ctx,
                                              int table_index,
                                              TupleId victim) {
  const Table& table = db_->table(table_index);
  // Survivor: any other live tuple of the same table.
  TupleId survivor = kInvalidTuple;
  for (int tries = 0; tries < 64 && survivor == kInvalidTuple; ++tries) {
    const TupleId cand = ctx->rng()->UniformInt(0, table.NumSlots() - 1);
    if (cand != victim && table.IsLive(cand)) survivor = cand;
  }
  if (survivor == kInvalidTuple) {
    table.ForEachLive([&](TupleId t) {
      if (survivor == kInvalidTuple && t != victim) survivor = t;
    });
  }
  if (survivor == kInvalidTuple) return false;
  const auto iit = inbound_.find(table_index);
  if (iit == inbound_.end()) return true;
  for (const FkEdge& e : iit->second) {
    const Table& child = db_->table(e.child_table);
    const Column& col = child.column(e.fk_col);
    std::vector<TupleId> referrers;
    child.ForEachLive([&](TupleId t) {
      if (col.IsValue(t) && col.GetInt(t) == victim) referrers.push_back(t);
    });
    if (referrers.empty()) continue;
    if (ctx->batch_hint() > 1 && referrers.size() > 1) {
      // One broadcast modification re-points every referrer at once
      // (columnar write, one vote, one notification).
      Modification mod = Modification::ReplaceValues(
          child.name(), referrers, {e.fk_col},
          {Value(static_cast<int64_t>(survivor))});
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
      if (!st.ok()) return false;
      continue;
    }
    for (const TupleId r : referrers) {
      Modification mod = Modification::ReplaceValues(
          child.name(), {r}, {e.fk_col},
          {Value(static_cast<int64_t>(survivor))});
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
      if (!st.ok()) return false;
    }
  }
  return refcount_->Unreferenced(table_index, victim);
}

Status CoappearPropertyTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("coappear: Tweak needs Bind");
  for (size_t g = 0; g < groups_.size(); ++g) {
    const Key zero(groups_[g].member_tables.size(), 0);
    // Guard: each conversion reduces the L1 gap, so 2x the initial gap
    // (plus slack) bounds the loop.
    int64_t guard =
        2 * (xi_[g].L1Distance(target_xi_[g]) +
             std::llabs(CurrentCount(static_cast<int>(g), zero) -
                        TargetCount(static_cast<int>(g), zero))) +
        64;
    std::set<Key> stuck;  // deficits proven unconvertible this pass
    while (guard-- > 0) {
      // Find a deficit vector (scan target then current keys).
      Key deficit;
      bool found = false;
      for (const auto& [v, c] : target_xi_[g].counts()) {
        if (stuck.count(v) == 0 &&
            CurrentCount(static_cast<int>(g), v) < c) {
          deficit = v;
          found = true;
          break;
        }
      }
      if (!found && stuck.count(zero) == 0 &&
          CurrentCount(static_cast<int>(g), zero) <
              TargetCount(static_cast<int>(g), zero)) {
        deficit = zero;
        found = true;
      }
      if (!found) break;

      // Surplus vectors ordered by Manhattan distance (zero included);
      // fall through to farther ones when the closest has no
      // convertible combo (e.g. all its tuples are referenced posts).
      std::vector<std::pair<int64_t, Key>> surpluses;
      for (const auto& [v, c] : xi_[g].counts()) {
        if (c <= target_xi_[g].Count(v)) continue;
        surpluses.emplace_back(ManhattanDistance(v, deficit), v);
      }
      if (CurrentCount(static_cast<int>(g), zero) >
          TargetCount(static_cast<int>(g), zero)) {
        surpluses.emplace_back(ManhattanDistance(zero, deficit), zero);
      }
      std::sort(surpluses.begin(), surpluses.end());
      bool converted = false;
      for (const auto& [dist, surplus] : surpluses) {
        if (ConvertOne(ctx, static_cast<int>(g), surplus, deficit)) {
          converted = true;
          break;
        }
      }
      if (!converted) stuck.insert(deficit);  // try remaining deficits
    }
  }
  return Status::OK();
}

Status CoappearPropertyTool::SaveTarget(std::ostream* out) const {
  *out << "coappear " << groups_.size() << "\n";
  for (size_t g = 0; g < groups_.size(); ++g) {
    *out << "group " << target_parent_sizes_[g].size() << " ";
    for (const int64_t s : target_parent_sizes_[g]) *out << s << " ";
    *out << target_member_sizes_[g].size() << " ";
    for (const int64_t s : target_member_sizes_[g]) *out << s << " ";
    *out << "\n";
    target_xi_[g].Write(out);
  }
  return Status::OK();
}

Status CoappearPropertyTool::LoadTarget(std::istream* in) {
  std::string tag;
  size_t n = 0;
  if (!(*in >> tag >> n) || tag != "coappear" || n != groups_.size()) {
    return Status::IoError("coappear: bad target header");
  }
  for (size_t g = 0; g < n; ++g) {
    size_t parents = 0;
    if (!(*in >> tag >> parents) || tag != "group") {
      return Status::IoError("coappear: bad group header");
    }
    target_parent_sizes_[g].assign(parents, 0);
    for (int64_t& s : target_parent_sizes_[g]) {
      if (!(*in >> s)) return Status::IoError("coappear: truncated");
    }
    size_t members = 0;
    if (!(*in >> members)) return Status::IoError("coappear: truncated");
    target_member_sizes_[g].assign(members, 0);
    for (int64_t& s : target_member_sizes_[g]) {
      if (!(*in >> s)) return Status::IoError("coappear: truncated");
    }
    ASPECT_ASSIGN_OR_RETURN(target_xi_[g], FrequencyDistribution::Read(in));
    if (target_xi_[g].dim() !=
        static_cast<int>(groups_[g].member_tables.size())) {
      return Status::IoError("coappear: distribution dim mismatch");
    }
  }
  return Status::OK();
}

}  // namespace aspect
