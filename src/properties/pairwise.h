// PairwisePropertyTool: enforces the pairwise property (Sec. V-C).
//
// For each response2post instantiation (sonSchema: user / post /
// response2post) the property is the distribution rho_R(x, y) = number
// of ordered user pairs (u, v) where u responded x times to v's posts
// and v responded y times to u's (Definition 5), with the huge
// (0, 0) mass implicit: sum rho = |U| (|U| - 1) (Theorem 4, P3).
// Self-responses are kept in the separate distribution rho_S(x) =
// number of users with x responses to their own posts (Theorems 10-11).
//
// Tweaking follows Algorithm 3: deficit vectors pull the Manhattan-
// closest surplus pair and add/remove response tuples; when a user has
// no post to respond to, a post is stolen from a user with several
// (shifting its responses to their other posts first) or, in the last
// resort, newly created - at most |U| - |P| creations (Theorem 5).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "stats/freq_dist.h"

namespace aspect {

class PairwisePropertyTool : public PropertyTool {
 public:
  explicit PairwisePropertyTool(const Schema& schema);

  std::string name() const override { return "pairwise"; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr
                   : std::make_unique<PairwisePropertyTool>(*this);
  }

  Status SetTargetFromDataset(const Database& ground_truth) override;
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;
  Status SaveTarget(std::ostream* out) const override;
  Status LoadTarget(std::istream* in) override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics (SpecState) are keyed by stable tuple ids and slot
  /// indices, so a content-identical database swap needs no rebuild:
  /// pointer swap plus listener re-registration.
  Status Rebase(Database* db) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: counted-response changes of all
  /// modifications are simulated against one shared n-overlay, so a
  /// batch whose tuples move the same ordered pair is priced jointly.
  /// Assumes disjoint tuples (the ApplyBatch caller contract).
  /// `veto_cap` licenses an early exit: one change moves a spec's
  /// penalty numerator by at most 4 (a pair change touches four rho
  /// entries by one, a self change two), so once the running exact
  /// numerators minus the remaining movement budget provably clear
  /// the cap, the tail is left unpriced and that lower bound is
  /// returned. A batch priced to completion goes through the same
  /// final pricing loops as the uncapped path, bit for bit.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  /// Whole-table row structure of the response and post tables
  /// (inserts, deletes, re-authoring) plus whole-table reads of the
  /// user table (pair sampling and the implicit zero mass).
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  int num_specs() const { return static_cast<int>(specs_.size()); }
  /// Current ordered-pair distribution of spec s (zero pair implicit).
  const FrequencyDistribution& CurrentRho(int s) const {
    return rho_[static_cast<size_t>(s)];
  }
  const FrequencyDistribution& TargetRho(int s) const {
    return target_rho_[static_cast<size_t>(s)];
  }
  const FrequencyDistribution& CurrentRhoSelf(int s) const {
    return rho_self_[static_cast<size_t>(s)];
  }

 private:
  using UserPair = std::pair<TupleId, TupleId>;

  struct SpecState {
    // Ordered response counts n(u, v); only non-zero entries stored.
    std::map<UserPair, int64_t> n;
    // Response tuple ids per ordered (responder, author) pair.
    std::map<UserPair, std::vector<TupleId>> responses;
    // (x, y) -> ordered pairs currently realizing it (x=n(u,v)).
    std::map<FrequencyDistribution::Key, std::set<UserPair>> buckets;
    // x -> users with x self-responses.
    std::map<int64_t, std::set<TupleId>> self_buckets;
    // Response tuple caches (by slot): responder / post; -1 unknown.
    std::vector<TupleId> resp_user;
    std::vector<TupleId> resp_post;
    // Post caches: author by slot; posts per user; responses per post.
    std::vector<TupleId> post_author;
    std::map<TupleId, std::vector<TupleId>> posts_by_user;
    std::map<TupleId, std::vector<TupleId>> responses_by_post;
    // Posts created by the tweaking algorithm (Theorem 5 bound).
    int64_t created_posts = 0;
    // Total responses received per user (for pair selection: giving a
    // user with existing incoming responses more of them leaves the
    // linear reachability of the user level untouched).
    std::map<TupleId, int64_t> incoming;
  };

  /// One counted-response change: user `u` responds to `v` delta more
  /// times (u == v for self-responses).
  struct NChange {
    int spec;
    TupleId u;
    TupleId v;
    int64_t delta;
  };

  std::vector<NChange> CollectNChanges(const Modification& mod,
                                       TupleId new_tuple,
                                       bool pre_apply) const;
  void ApplyNChange(const NChange& c);
  /// Simulated error change of applying `changes` (shared across the
  /// single and batch validation paths). A finite `veto_cap` allows
  /// stopping as soon as the final penalty is provably above the cap,
  /// returning a conservative lower bound that is itself above it.
  double PenaltyOfChanges(const std::vector<NChange>& changes,
                          double veto_cap = kNoPenaltyCap) const;
  /// Maintains the structural caches (authors, posts lists, response
  /// lists) for an applied modification.
  void ApplyStructural(const Modification& mod,
                       const std::vector<Value>& old_values,
                       TupleId new_tuple);

  double SpecError(int s) const;
  int64_t CurrentZeroPairs(int s) const;
  int64_t TargetZeroPairs(int s) const;
  int64_t CurrentZeroSelf(int s) const;
  int64_t TargetZeroSelf(int s) const;

  /// Ensures user `v` has at least one post, stealing or creating one
  /// (the Theorem 5 procedure). Returns the post id or kInvalidTuple.
  TupleId EnsurePost(TweakContext* ctx, int s, TupleId v);

  /// Adds (delta > 0) or removes (delta < 0) |delta| responses from
  /// `u` to `v`'s posts.
  bool AdjustResponses(TweakContext* ctx, int s, TupleId u, TupleId v,
                       int64_t delta);

  /// Converts one pair from vector `from` to `to` (Algorithm 3 unit);
  /// zero vectors select a fresh non-interacting pair.
  bool ConvertPair(TweakContext* ctx, int s,
                   const FrequencyDistribution::Key& from,
                   const FrequencyDistribution::Key& to);
  /// Same for the self distribution (Theorem 11 unit).
  bool ConvertSelf(TweakContext* ctx, int s, int64_t from, int64_t to);

  Schema schema_;
  std::vector<ResponseSpec> specs_;
  // table -> spec ids where it is the response / post table.
  std::map<int, std::vector<int>> response_index_;
  std::map<int, std::vector<int>> post_index_;

  Database* db_ = nullptr;
  std::vector<SpecState> state_;
  std::vector<FrequencyDistribution> rho_;       // dim 2, ordered pairs
  std::vector<FrequencyDistribution> rho_self_;  // dim 1

  std::vector<FrequencyDistribution> target_rho_;
  std::vector<FrequencyDistribution> target_rho_self_;
  std::vector<int64_t> target_users_;
  int max_attempts_ = 24;
};

}  // namespace aspect
