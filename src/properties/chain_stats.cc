#include "properties/chain_stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace aspect {

double JoinMatrix::ErrorAgainst(const JoinMatrix& target) const {
  assert(k_ == target.k_);
  if (k_ < 2) return 0.0;
  double sum = 0;
  int n = 0;
  for (int j = 1; j < k_; ++j) {
    for (int i = 0; i < j; ++i) {
      const double t = static_cast<double>(target.at(j, i));
      const double v = static_cast<double>(at(j, i));
      sum += std::fabs(v - t) / std::max(t, 1.0);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

std::string JoinMatrix::ToString() const {
  std::ostringstream os;
  for (int j = 1; j < k_; ++j) {
    os << "[";
    for (int i = 0; i < j; ++i) {
      if (i > 0) os << " ";
      os << at(j, i);
    }
    os << "]";
  }
  return os.str();
}

ChainStats::ChainStats(ReferenceChain chain)
    : chain_(std::move(chain)), h_(static_cast<int>(chain_.tables.size())) {}

int ChainStats::LevelOfTable(int table_index) const {
  for (size_t l = 0; l < chain_.tables.size(); ++l) {
    if (chain_.tables[l] == table_index) return static_cast<int>(l);
  }
  return -1;
}

int32_t ChainStats::Cnt(int level, TupleId t, int j) const {
  assert(j > level && j < k());
  const int width = k() - 1 - level;
  return cnt_[static_cast<size_t>(level)]
             [static_cast<size_t>(t) * static_cast<size_t>(width) +
              static_cast<size_t>(j - level - 1)];
}

int ChainStats::MaxReach(int level, TupleId t) const {
  int r = level;
  for (int j = level + 1; j < k(); ++j) {
    if (Cnt(level, t, j) > 0) {
      r = j;
    } else {
      break;  // reach sets are contiguous
    }
  }
  return r;
}

TupleId ChainStats::AncestorAt(int level, TupleId t, int target_level) const {
  assert(target_level <= level);
  TupleId cur = t;
  for (int l = level; l > target_level; --l) {
    cur = Parent(l, cur);
    if (cur == kInvalidTuple) return kInvalidTuple;
  }
  return cur;
}

TupleId ChainStats::DescendantAt(int level, TupleId t,
                                 int target_level) const {
  assert(target_level >= level);
  TupleId cur = t;
  for (int l = level; l < target_level; ++l) {
    const auto& kids = Children(l, cur);
    TupleId next = kInvalidTuple;
    for (const TupleId c : kids) {
      if (Reaches(l + 1, c, target_level)) {
        next = c;
        break;
      }
    }
    if (next == kInvalidTuple) return kInvalidTuple;
    cur = next;
  }
  return cur;
}

void ChainStats::Propagate(int level, TupleId t, int j, int delta) {
  // Adjusts cnt(level, t, j) by delta and, when the tuple's reach to j
  // flips, updates h(j, level) and recurses to the parent.
  int l = level;
  TupleId cur = t;
  while (true) {
    const int width = k() - 1 - l;
    int32_t& c = cnt_[static_cast<size_t>(l)]
                     [static_cast<size_t>(cur) * static_cast<size_t>(width) +
                      static_cast<size_t>(j - l - 1)];
    c += static_cast<int32_t>(delta);
    assert(c >= 0);
    const bool flipped =
        (delta > 0 && c == 1) || (delta < 0 && c == 0);
    if (!flipped) return;
    h_.add(j, l, delta);
    if (l == 0) return;
    const TupleId p = Parent(l, cur);
    if (p == kInvalidTuple) return;
    cur = p;
    --l;
  }
}

void ChainStats::Attach(int level, TupleId child, TupleId parent) {
  assert(level >= 1 && level < k());
  assert(Parent(level, child) == kInvalidTuple);
  parent_[static_cast<size_t>(level)][static_cast<size_t>(child)] = parent;
  auto& kids = children_[static_cast<size_t>(level - 1)]
                        [static_cast<size_t>(parent)];
  child_pos_[static_cast<size_t>(level)][static_cast<size_t>(child)] =
      static_cast<int32_t>(kids.size());
  kids.push_back(child);
  // The child contributes its whole (contiguous) reach set upward.
  const int max_reach = MaxReach(level, child);
  for (int j = level; j <= max_reach; ++j) {
    Propagate(level - 1, parent, j, +1);
  }
}

void ChainStats::Detach(int level, TupleId child) {
  assert(level >= 1 && level < k());
  const TupleId parent =
      parent_[static_cast<size_t>(level)][static_cast<size_t>(child)];
  if (parent == kInvalidTuple) return;
  const int max_reach = MaxReach(level, child);
  for (int j = level; j <= max_reach; ++j) {
    Propagate(level - 1, parent, j, -1);
  }
  // Swap-remove from the parent's children list.
  auto& kids = children_[static_cast<size_t>(level - 1)]
                        [static_cast<size_t>(parent)];
  const int32_t pos =
      child_pos_[static_cast<size_t>(level)][static_cast<size_t>(child)];
  const TupleId last = kids.back();
  kids[static_cast<size_t>(pos)] = last;
  child_pos_[static_cast<size_t>(level)][static_cast<size_t>(last)] = pos;
  kids.pop_back();
  parent_[static_cast<size_t>(level)][static_cast<size_t>(child)] =
      kInvalidTuple;
}

void ChainStats::EnsureSlotCount(int level, int64_t slots) {
  const int kk = k();
  const size_t n = static_cast<size_t>(slots);
  const size_t l = static_cast<size_t>(level);
  if (level >= 1) {
    if (parent_[l].size() < n) parent_[l].resize(n, kInvalidTuple);
    if (child_pos_[l].size() < n) child_pos_[l].resize(n, -1);
  }
  if (level <= kk - 2 && children_[l].size() < n) {
    children_[l].resize(n);
  }
  const size_t width = static_cast<size_t>(kk - 1 - level);
  if (cnt_[l].size() < n * width) cnt_[l].resize(n * width, 0);
}

void ChainStats::EnsureCapacity(const Database& db) {
  const int kk = k();
  parent_.resize(static_cast<size_t>(kk));
  children_.resize(static_cast<size_t>(kk));
  child_pos_.resize(static_cast<size_t>(kk));
  cnt_.resize(static_cast<size_t>(kk));
  for (int l = 0; l < kk; ++l) {
    const Table& t = db.table(chain_.tables[static_cast<size_t>(l)]);
    const size_t slots = static_cast<size_t>(t.NumSlots());
    if (l >= 1) {
      parent_[static_cast<size_t>(l)].resize(slots, kInvalidTuple);
      child_pos_[static_cast<size_t>(l)].resize(slots, -1);
    }
    if (l <= kk - 2) {
      children_[static_cast<size_t>(l)].resize(slots);
    }
    const size_t width = static_cast<size_t>(kk - 1 - l);
    cnt_[static_cast<size_t>(l)].resize(slots * width, 0);
  }
}

void ChainStats::Build(const Database& db) {
  const int kk = k();
  h_ = JoinMatrix(kk);
  parent_.assign(static_cast<size_t>(kk), {});
  children_.assign(static_cast<size_t>(kk), {});
  child_pos_.assign(static_cast<size_t>(kk), {});
  cnt_.assign(static_cast<size_t>(kk), {});
  EnsureCapacity(db);
  // Attach top-down so a child's reach set is complete before it is
  // attached to its parent.
  for (int l = kk - 1; l >= 1; --l) {
    const Table& t = db.table(chain_.tables[static_cast<size_t>(l)]);
    const Column& fk = t.column(chain_.fk_cols[static_cast<size_t>(l - 1)]);
    t.ForEachLive([&](TupleId tid) {
      if (!fk.IsValue(tid)) return;
      Attach(l, tid, fk.GetInt(tid));
    });
  }
}

JoinMatrix ComputeJoinMatrix(const Database& db,
                             const ReferenceChain& chain) {
  ChainStats stats(chain);
  stats.Build(db);
  return stats.matrix();
}

}  // namespace aspect
