// ChainStats: incremental statistics for one reference chain
// Tk -> ... -> T1 (Sec. V-A of the paper).
//
// Levels are 0-based here: level 0 is the root table T1, level k-1 is
// Tk. For every tuple t at level L the structure maintains
//   cnt(L, t, j) = number of children of t (at level L+1) whose subtree
//                  reaches level j, for j in (L, k),
// plus parent pointers, children lists and the linear join matrix
//   h(j, i) = |S_{j,i}| = number of level-i tuples reaching level j.
//
// Because a chain is a path, a tuple's reach set is always the
// contiguous range [L, MaxReach(t)] - reaching level j implies reaching
// every level between L and j.
//
// Attach/Detach update all counters and the matrix in O(k) per level
// flip, which is what makes both the Statistics Updater and the exact
// move-effect evaluation (apply + revert) cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/refgraph.h"

namespace aspect {

/// Lower-triangular linear join matrix; entry (j, i) is stored for
/// 0 <= i < j < k (0-based levels).
class JoinMatrix {
 public:
  explicit JoinMatrix(int k = 0) : k_(k), h_(static_cast<size_t>(k * k), 0) {}

  int k() const { return k_; }
  int64_t at(int j, int i) const {
    return h_[static_cast<size_t>(j * k_ + i)];
  }
  void set(int j, int i, int64_t v) {
    h_[static_cast<size_t>(j * k_ + i)] = v;
  }
  void add(int j, int i, int64_t d) {
    h_[static_cast<size_t>(j * k_ + i)] += d;
  }

  bool operator==(const JoinMatrix& other) const {
    return k_ == other.k_ && h_ == other.h_;
  }

  /// Mean relative error against a target matrix (the paper's
  /// epsilon_H): mean over entries of |h - h~| / max(h~, 1).
  double ErrorAgainst(const JoinMatrix& target) const;

  std::string ToString() const;

 private:
  int k_;
  std::vector<int64_t> h_;
};

class ChainStats {
 public:
  explicit ChainStats(ReferenceChain chain);

  const ReferenceChain& chain() const { return chain_; }
  int k() const { return static_cast<int>(chain_.tables.size()); }

  /// (Re)builds all statistics from the database.
  void Build(const Database& db);

  /// Grows per-tuple arrays to cover new appends in `db`.
  void EnsureCapacity(const Database& db);

  /// Grows the per-tuple arrays of one level to at least `slots` rows
  /// (used to simulate an insert before the database applies it).
  void EnsureSlotCount(int level, int64_t slots);

  const JoinMatrix& matrix() const { return h_; }

  /// Parent of tuple `t` at level L (L >= 1); -1 if detached.
  TupleId Parent(int level, TupleId t) const {
    return parent_[static_cast<size_t>(level)][static_cast<size_t>(t)];
  }

  /// Children (at level L+1) of tuple `t` at level L (L <= k-2).
  const std::vector<TupleId>& Children(int level, TupleId t) const {
    return children_[static_cast<size_t>(level)][static_cast<size_t>(t)];
  }

  /// Number of children of `t` (level L) whose subtree reaches level j.
  int32_t Cnt(int level, TupleId t, int j) const;

  /// True if tuple `t` at level L has a descendant at level j (j == L
  /// counts as reaching itself).
  bool Reaches(int level, TupleId t, int j) const {
    return j == level || Cnt(level, t, j) > 0;
  }

  /// Largest level `t` reaches.
  int MaxReach(int level, TupleId t) const;

  /// Ancestor of `t` at `target_level` (walking parent pointers);
  /// kInvalidTuple if the path is broken by a detached tuple.
  TupleId AncestorAt(int level, TupleId t, int target_level) const;

  /// Any descendant of `t` at `target_level` (walking children that
  /// reach it); kInvalidTuple if none.
  TupleId DescendantAt(int level, TupleId t, int target_level) const;

  /// Attaches tuple `child` at level L (>= 1) under `parent` at L-1,
  /// updating counters and the matrix. `child` must be detached.
  void Attach(int level, TupleId child, TupleId parent);

  /// Detaches `child` at level L from its current parent (no-op if
  /// already detached).
  void Detach(int level, TupleId child);

  /// Every level at which `table_index` appears in this chain (a DAG
  /// path visits a table at most once, so 0 or 1 entries).
  int LevelOfTable(int table_index) const;

 private:
  void Propagate(int level, TupleId t, int j, int delta);

  ReferenceChain chain_;
  JoinMatrix h_;
  // parent_[L][t] for L in [1, k); children_[L][t] for L in [0, k-1);
  // child_pos_[L][t]: index of t within its parent's children vector.
  std::vector<std::vector<TupleId>> parent_;
  std::vector<std::vector<std::vector<TupleId>>> children_;
  std::vector<std::vector<int32_t>> child_pos_;
  // cnt_[L]: per tuple, (k-1-L) counters for j in (L, k).
  std::vector<std::vector<int32_t>> cnt_;
};

/// Extracts the linear join matrix of a chain directly from a database
/// (one-shot, no incremental state). Used for targets and tests.
JoinMatrix ComputeJoinMatrix(const Database& db, const ReferenceChain& chain);

}  // namespace aspect
