// LinearPropertyTool: enforces the linear join property (Sec. V-A).
//
// The property is the set of linear join matrices H, one per maximal
// reference chain of the schema. The tweaking algorithm follows
// Algorithm 1 / Appendix X-A: matrices are fixed row by row, each row
// leading-entry first, by plucking tuples from one parent and
// attaching them to another. Every candidate move is evaluated
// exactly against the incrementally maintained ChainStats (including
// chains that share the moved edge), so moves that would damage
// already-fixed entries or already-tweaked chains are rejected and
// alternatives tried - the in-tool analogue of the framework-level
// validator voting.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "properties/chain_stats.h"
#include "relational/refgraph.h"

namespace aspect {

class LinearPropertyTool : public PropertyTool {
 public:
  explicit LinearPropertyTool(const Schema& schema);

  std::string name() const override { return "linear"; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr : std::make_unique<LinearPropertyTool>(*this);
  }

  // Target Generator.
  Status SetTargetFromDataset(const Database& ground_truth) override;
  /// User-input mode: sets all targets explicitly (chain order as in
  /// `chains()`).
  Status SetTargetMatrices(std::vector<JoinMatrix> targets);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;
  Status SaveTarget(std::ostream* out) const override;
  Status LoadTarget(std::istream* in) override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics (ChainStats) are keyed by stable tuple ids, never by
  /// raw storage addresses, so a content-identical database swap needs
  /// no rebuild: pointer swap plus listener re-registration.
  Status Rebase(Database* db) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: all edge changes of the batch are applied to
  /// the chain stats together before measuring, so moves that only
  /// cancel out jointly are priced as a unit (the default per-mod sum
  /// would veto them). Assumes the batch's tuples are disjoint (the
  /// ApplyBatch caller contract), so pre-apply old parents are current.
  /// `veto_cap` licenses an early exit: one edge change moves any join
  /// matrix entry by at most 2 (only the single ancestor above the
  /// re-parented child at a level can flip its reach, once per detach
  /// and once per attach), giving a per-chain per-change bound on the
  /// error movement. The capped path applies changes in chunks,
  /// re-measures the affected chains between chunks, and once the
  /// measured error minus the remaining movement budget provably
  /// clears the cap it reverts the applied prefix and returns that
  /// lower bound. A batch priced to completion reaches the same
  /// statistics state and final measurement as the uncapped path, bit
  /// for bit.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  /// Writes the FK columns of every chain edge; reads the same columns
  /// plus the root tables' row structure (reach counts depend on which
  /// root tuples exist).
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  // Statistics Updater.
  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  const std::vector<ReferenceChain>& chains() const { return chains_; }
  const std::vector<JoinMatrix>& targets() const { return targets_; }
  /// Current matrix of chain `c` (requires bound).
  const JoinMatrix& CurrentMatrix(int c) const {
    return stats_[static_cast<size_t>(c)].matrix();
  }

  /// Projects `m` onto the feasible set of Theorem 1 for the given
  /// chain table sizes (L1-L4 plus h >= 1). Exposed for tests.
  static void RepairMatrix(JoinMatrix* m, const std::vector<int64_t>& sizes);

  /// Checks Theorem 1's conditions (L1-L4) for target `m`.
  static Status CheckMatrixFeasible(const JoinMatrix& m,
                                    const std::vector<int64_t>& sizes);

 private:
  struct EdgeChange {
    int chain = -1;
    int level = -1;
    TupleId child = kInvalidTuple;
    TupleId old_parent = kInvalidTuple;
    TupleId new_parent = kInvalidTuple;
  };

  /// Expands a modification into per-chain edge changes. Old parents
  /// are taken from `old_values` when given (post-apply notification)
  /// or read from the live database (pre-apply simulation).
  std::vector<EdgeChange> CollectEdgeChanges(
      const Modification& mod, const std::vector<Value>* old_values,
      TupleId new_tuple) const;

  /// Span-based so the capped batch vote can apply changes in chunks
  /// and revert just the applied prefix on an early exit.
  void ApplyEdgeChanges(std::span<const EdgeChange> changes);
  void RevertEdgeChanges(std::span<const EdgeChange> changes);

  /// Per-chain entry deltas caused by re-parenting one edge
  /// (simulated: stats are restored before returning).
  struct ChainDelta {
    int chain;
    std::vector<std::tuple<int, int, int64_t>> entries;  // (j, i, delta)
  };
  std::vector<ChainDelta> EvaluateEdgeMove(int table, int col,
                                           TupleId child,
                                           TupleId new_parent) const;

  /// Combined per-chain deltas of re-parenting every child in
  /// `children` (distinct tuples) to the same `new_parent` - the exact
  /// evaluation behind grouped leaf attaching (batch_hint > 1).
  std::vector<ChainDelta> EvaluateGroupMove(
      int table, int col, const std::vector<TupleId>& children,
      TupleId new_parent) const;

  /// True if the move damages any chain in `protected_upto` (chain
  /// index < protected_upto), or touches rows < row_limit / entries
  /// <= entry_limit of chain `current`.
  bool MoveDamagesProtected(const std::vector<ChainDelta>& deltas,
                            int current, int protected_upto, int row_limit,
                            int entry_limit) const;

  // One-unit adjustments for entry (J, i) of chain `ci` (0-based
  // levels). Return true if a unit of progress was made.
  bool ReduceOnce(TweakContext* ctx, int ci, int J, int i,
                  int protected_upto);
  bool IncreaseOnce(TweakContext* ctx, int ci, int J, int i,
                    int protected_upto);

  /// Proposes the FK re-parenting of `child` in chain `ci` at level
  /// `level` to `new_parent`, first through validators, forcing after
  /// `max_attempts_` consecutive vetoes of this logical step.
  Status ProposeMove(TweakContext* ctx, int ci, int level, TupleId child,
                     TupleId new_parent, int* veto_budget);

  /// Samples a live tuple of the chain's level-L table satisfying
  /// `pred`; falls back to a full scan. Returns kInvalidTuple if none.
  template <typename Pred>
  TupleId FindTuple(TweakContext* ctx, int ci, int level, Pred pred) const;

  Schema schema_;
  std::vector<ReferenceChain> chains_;
  mutable std::vector<ChainStats> stats_;
  std::vector<JoinMatrix> targets_;
  Database* db_ = nullptr;
  // (table, col) -> [(chain, level)] for every chain edge.
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> edges_;
  int max_attempts_ = 24;
};

}  // namespace aspect
