#include "properties/pairwise.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace aspect {
namespace {

using Key = FrequencyDistribution::Key;

bool EraseFrom(std::vector<TupleId>* v, TupleId t) {
  const auto it = std::find(v->begin(), v->end(), t);
  if (it == v->end()) return false;
  *it = v->back();
  v->pop_back();
  return true;
}

}  // namespace

PairwisePropertyTool::PairwisePropertyTool(const Schema& schema)
    : schema_(schema), specs_(schema.responses) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    response_index_[schema_.TableIndex(specs_[s].response_table)].push_back(
        static_cast<int>(s));
    post_index_[schema_.TableIndex(specs_[s].post_table)].push_back(
        static_cast<int>(s));
    rho_.emplace_back(2);
    rho_self_.emplace_back(1);
    target_rho_.emplace_back(2);
    target_rho_self_.emplace_back(1);
  }
  target_users_.assign(specs_.size(), 0);
}

Status PairwisePropertyTool::SetTargetFromDataset(
    const Database& ground_truth) {
  for (size_t s = 0; s < specs_.size(); ++s) {
    const ResponseSpec& spec = specs_[s];
    const Table* resp = ground_truth.FindTable(spec.response_table);
    const Table* post = ground_truth.FindTable(spec.post_table);
    const Table* user = ground_truth.FindTable(schema_.user_table);
    if (resp == nullptr || post == nullptr || user == nullptr) {
      return Status::Invalid("pairwise: ground truth misses tables");
    }
    std::map<UserPair, int64_t> n;
    resp->ForEachLive([&](TupleId rid) {
      if (!resp->column(spec.responder_col).IsValue(rid) ||
          !resp->column(spec.post_col).IsValue(rid)) {
        return;
      }
      const TupleId u = resp->column(spec.responder_col).GetInt(rid);
      const TupleId p = resp->column(spec.post_col).GetInt(rid);
      const TupleId v = post->column(spec.author_col).GetInt(p);
      ++n[{u, v}];
    });
    FrequencyDistribution rho(2), rho_self(1);
    for (const auto& [pair, x] : n) {
      const auto& [u, v] = pair;
      if (u == v) {
        rho_self.Add({x}, 1);
      } else {
        const auto yit = n.find({v, u});
        const int64_t y = yit == n.end() ? 0 : yit->second;
        rho.Add({x, y}, 1);  // counted once per ordered pair
      }
      // Pairs where only (v, u) is present are added when the loop
      // reaches them; (x, 0) pairs need the reverse entry too.
      if (u != v && n.find({v, u}) == n.end()) {
        rho.Add({0, x}, 1);
      }
    }
    target_rho_[s] = std::move(rho);
    target_rho_self_[s] = std::move(rho_self);
    target_users_[s] = user->NumTuples();
  }
  return Status::OK();
}

Status PairwisePropertyTool::Bind(Database* db) {
  db_ = db;
  state_.assign(specs_.size(), SpecState{});
  for (size_t s = 0; s < specs_.size(); ++s) {
    const ResponseSpec& spec = specs_[s];
    SpecState& st = state_[s];
    rho_[s].Clear();
    rho_self_[s].Clear();
    const Table* resp = db_->FindTable(spec.response_table);
    const Table* post = db_->FindTable(spec.post_table);
    st.resp_user.assign(static_cast<size_t>(resp->NumSlots()),
                        kInvalidTuple);
    st.resp_post.assign(static_cast<size_t>(resp->NumSlots()),
                        kInvalidTuple);
    st.post_author.assign(static_cast<size_t>(post->NumSlots()),
                          kInvalidTuple);
    post->ForEachLive([&](TupleId pid) {
      if (!post->column(spec.author_col).IsValue(pid)) return;
      const TupleId a = post->column(spec.author_col).GetInt(pid);
      st.post_author[static_cast<size_t>(pid)] = a;
      st.posts_by_user[a].push_back(pid);
    });
    resp->ForEachLive([&](TupleId rid) {
      if (!resp->column(spec.responder_col).IsValue(rid) ||
          !resp->column(spec.post_col).IsValue(rid)) {
        return;
      }
      const TupleId u = resp->column(spec.responder_col).GetInt(rid);
      const TupleId p = resp->column(spec.post_col).GetInt(rid);
      st.resp_user[static_cast<size_t>(rid)] = u;
      st.resp_post[static_cast<size_t>(rid)] = p;
      st.responses_by_post[p].push_back(rid);
      const TupleId v = st.post_author[static_cast<size_t>(p)];
      st.responses[{u, v}].push_back(rid);
      NChange c;
      c.spec = static_cast<int>(s);
      c.u = u;
      c.v = v;
      c.delta = 1;
      ApplyNChange(c);
    });
  }
  db_->AddListener(this);
  return Status::OK();
}

void PairwisePropertyTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
  state_.clear();
}

Status PairwisePropertyTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  if (db == db_) return Status::OK();
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  return Status::OK();
}

void PairwisePropertyTool::ApplyNChange(const NChange& c) {
  SpecState& st = state_[static_cast<size_t>(c.spec)];
  auto& incoming = st.incoming[c.v];
  incoming += c.delta;
  if (incoming == 0) st.incoming.erase(c.v);
  FrequencyDistribution& rho = rho_[static_cast<size_t>(c.spec)];
  FrequencyDistribution& rho_self = rho_self_[static_cast<size_t>(c.spec)];
  auto count = [&](TupleId a, TupleId b) -> int64_t {
    const auto it = st.n.find({a, b});
    return it == st.n.end() ? 0 : it->second;
  };
  if (c.u == c.v) {
    const int64_t x = count(c.u, c.u);
    if (x > 0) {
      rho_self.Add({x}, -1);
      st.self_buckets[x].erase(c.u);
      if (st.self_buckets[x].empty()) st.self_buckets.erase(x);
    }
    const int64_t nx = x + c.delta;
    assert(nx >= 0);
    if (nx > 0) {
      st.n[{c.u, c.u}] = nx;
      rho_self.Add({nx}, 1);
      st.self_buckets[nx].insert(c.u);
    } else {
      st.n.erase({c.u, c.u});
    }
    return;
  }
  const int64_t x = count(c.u, c.v);
  const int64_t y = count(c.v, c.u);
  if (x != 0 || y != 0) {
    rho.Add({x, y}, -1);
    rho.Add({y, x}, -1);
    auto debucket = [&](const Key& k, const UserPair& p) {
      const auto it = st.buckets.find(k);
      it->second.erase(p);
      if (it->second.empty()) st.buckets.erase(it);
    };
    debucket({x, y}, {c.u, c.v});
    debucket({y, x}, {c.v, c.u});
  }
  const int64_t nx = x + c.delta;
  assert(nx >= 0);
  if (nx > 0) {
    st.n[{c.u, c.v}] = nx;
  } else {
    st.n.erase({c.u, c.v});
  }
  if (nx != 0 || y != 0) {
    rho.Add({nx, y}, 1);
    rho.Add({y, nx}, 1);
    st.buckets[{nx, y}].insert({c.u, c.v});
    st.buckets[{y, nx}].insert({c.v, c.u});
  }
}

std::vector<PairwisePropertyTool::NChange>
PairwisePropertyTool::CollectNChanges(const Modification& mod,
                                      TupleId new_tuple,
                                      bool pre_apply) const {
  // The inserted tuple's id is irrelevant to pair counts (the counts
  // key on responder/author, not on the response id).
  (void)new_tuple;
  std::vector<NChange> out;
  const int table = db_->schema().TableIndex(mod.table);

  const auto rit = response_index_.find(table);
  if (rit != response_index_.end()) {
    for (const int s : rit->second) {
      const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
      const SpecState& st = state_[static_cast<size_t>(s)];
      const Table& resp = db_->table(table);
      auto author_of = [&](TupleId p) -> TupleId {
        if (p < 0 ||
            p >= static_cast<TupleId>(st.post_author.size())) {
          // A post appended after Bind: read from the database.
          const Table* post = db_->FindTable(spec.post_table);
          if (post == nullptr || p < 0 || p >= post->NumSlots() ||
              !post->column(spec.author_col).IsValue(p)) {
            return kInvalidTuple;
          }
          return post->column(spec.author_col).GetInt(p);
        }
        return st.post_author[static_cast<size_t>(p)];
      };
      auto cached = [&](TupleId rid, bool* counted) -> UserPair {
        const TupleId u =
            rid < static_cast<TupleId>(st.resp_user.size())
                ? st.resp_user[static_cast<size_t>(rid)]
                : kInvalidTuple;
        const TupleId p =
            rid < static_cast<TupleId>(st.resp_post.size())
                ? st.resp_post[static_cast<size_t>(rid)]
                : kInvalidTuple;
        *counted = u != kInvalidTuple && p != kInvalidTuple;
        return {u, *counted ? author_of(p) : kInvalidTuple};
      };
      auto emit = [&](TupleId u, TupleId v, int64_t delta) {
        if (u == kInvalidTuple || v == kInvalidTuple) return;
        NChange c;
        c.spec = s;
        c.u = u;
        c.v = v;
        c.delta = delta;
        out.push_back(c);
      };
      switch (mod.kind) {
        case OpKind::kInsertTuple: {
          const Value& uv =
              mod.values[static_cast<size_t>(spec.responder_col)];
          const Value& pv = mod.values[static_cast<size_t>(spec.post_col)];
          if (!uv.is_null() && !pv.is_null()) {
            emit(uv.int64(), author_of(pv.int64()), +1);
          }
          break;
        }
        case OpKind::kDeleteTuple: {
          bool counted = false;
          const UserPair uvp = cached(mod.tuples[0], &counted);
          if (counted) emit(uvp.first, uvp.second, -1);
          break;
        }
        case OpKind::kDeleteValues:
        case OpKind::kInsertValues:
        case OpKind::kReplaceValues: {
          bool touches = false;
          for (const int c : mod.cols) {
            touches |= c == spec.responder_col || c == spec.post_col;
          }
          if (!touches) break;
          for (const TupleId rid : mod.tuples) {
            bool counted = false;
            const UserPair old_uv = cached(rid, &counted);
            if (counted) emit(old_uv.first, old_uv.second, -1);
            // New state: overlay proposed values (pre-apply) or read
            // the updated database (post-apply).
            TupleId nu = kInvalidTuple, np = kInvalidTuple;
            auto cell = [&](int col) -> Value {
              if (pre_apply) {
                for (size_t j = 0; j < mod.cols.size(); ++j) {
                  if (mod.cols[j] == col) {
                    if (mod.kind == OpKind::kDeleteValues) return Value();
                    return mod.values[j];
                  }
                }
              }
              return resp.column(col).Get(rid);
            };
            const Value nuv = cell(spec.responder_col);
            const Value npv = cell(spec.post_col);
            if (!nuv.is_null()) nu = nuv.int64();
            if (!npv.is_null()) np = npv.int64();
            if (nu != kInvalidTuple && np != kInvalidTuple) {
              emit(nu, author_of(np), +1);
            }
          }
          break;
        }
      }
    }
  }

  const auto pit = post_index_.find(table);
  if (pit != post_index_.end()) {
    for (const int s : pit->second) {
      const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
      const SpecState& st = state_[static_cast<size_t>(s)];
      const Table& post = db_->table(table);
      // Only author reassignment moves response counts between pairs.
      if (mod.kind != OpKind::kReplaceValues) continue;
      int author_j = -1;
      for (size_t j = 0; j < mod.cols.size(); ++j) {
        if (mod.cols[j] == spec.author_col) author_j = static_cast<int>(j);
      }
      if (author_j < 0) continue;
      for (const TupleId pid : mod.tuples) {
        const TupleId old_a =
            pid < static_cast<TupleId>(st.post_author.size())
                ? st.post_author[static_cast<size_t>(pid)]
                : (post.column(spec.author_col).IsValue(pid)
                       ? post.column(spec.author_col).GetInt(pid)
                       : kInvalidTuple);
        const Value& nav = mod.values[static_cast<size_t>(author_j)];
        const TupleId new_a = nav.is_null() ? kInvalidTuple : nav.int64();
        if (old_a == new_a) continue;
        const auto lit = st.responses_by_post.find(pid);
        if (lit == st.responses_by_post.end()) continue;
        for (const TupleId rid : lit->second) {
          const TupleId u = st.resp_user[static_cast<size_t>(rid)];
          if (u == kInvalidTuple) continue;
          NChange c;
          c.spec = s;
          c.u = u;
          c.delta = 0;  // filled below
          if (old_a != kInvalidTuple) {
            c.v = old_a;
            c.delta = -1;
            out.push_back(c);
          }
          if (new_a != kInvalidTuple) {
            c.v = new_a;
            c.delta = +1;
            out.push_back(c);
          }
        }
      }
    }
  }
  return out;
}

void PairwisePropertyTool::ApplyStructural(
    const Modification& mod, const std::vector<Value>& old_values,
    TupleId new_tuple) {
  (void)old_values;  // pre-images come from this tool's own caches
  const int table = db_->schema().TableIndex(mod.table);

  const auto rit = response_index_.find(table);
  if (rit != response_index_.end()) {
    for (const int s : rit->second) {
      const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
      SpecState& st = state_[static_cast<size_t>(s)];
      auto author_of = [&](TupleId p) -> TupleId {
        return p >= 0 && p < static_cast<TupleId>(st.post_author.size())
                   ? st.post_author[static_cast<size_t>(p)]
                   : kInvalidTuple;
      };
      auto unlink = [&](TupleId rid) {
        const TupleId u = st.resp_user[static_cast<size_t>(rid)];
        const TupleId p = st.resp_post[static_cast<size_t>(rid)];
        if (u == kInvalidTuple || p == kInvalidTuple) return;
        EraseFrom(&st.responses_by_post[p], rid);
        if (st.responses_by_post[p].empty()) st.responses_by_post.erase(p);
        const TupleId v = author_of(p);
        const auto it = st.responses.find({u, v});
        if (it != st.responses.end()) {
          EraseFrom(&it->second, rid);
          if (it->second.empty()) st.responses.erase(it);
        }
      };
      auto link = [&](TupleId rid) {
        const TupleId u = st.resp_user[static_cast<size_t>(rid)];
        const TupleId p = st.resp_post[static_cast<size_t>(rid)];
        if (u == kInvalidTuple || p == kInvalidTuple) return;
        st.responses_by_post[p].push_back(rid);
        st.responses[{u, author_of(p)}].push_back(rid);
      };
      auto grow = [&](TupleId rid) {
        if (rid >= static_cast<TupleId>(st.resp_user.size())) {
          st.resp_user.resize(static_cast<size_t>(rid) + 1, kInvalidTuple);
          st.resp_post.resize(static_cast<size_t>(rid) + 1, kInvalidTuple);
        }
      };
      switch (mod.kind) {
        case OpKind::kInsertTuple: {
          grow(new_tuple);
          const Value& uv =
              mod.values[static_cast<size_t>(spec.responder_col)];
          const Value& pv = mod.values[static_cast<size_t>(spec.post_col)];
          st.resp_user[static_cast<size_t>(new_tuple)] =
              uv.is_null() ? kInvalidTuple : uv.int64();
          st.resp_post[static_cast<size_t>(new_tuple)] =
              pv.is_null() ? kInvalidTuple : pv.int64();
          link(new_tuple);
          break;
        }
        case OpKind::kDeleteTuple: {
          const TupleId rid = mod.tuples[0];
          unlink(rid);
          st.resp_user[static_cast<size_t>(rid)] = kInvalidTuple;
          st.resp_post[static_cast<size_t>(rid)] = kInvalidTuple;
          break;
        }
        case OpKind::kDeleteValues:
        case OpKind::kInsertValues:
        case OpKind::kReplaceValues: {
          bool touches = false;
          for (const int c : mod.cols) {
            touches |= c == spec.responder_col || c == spec.post_col;
          }
          if (!touches) break;
          const Table& resp = db_->table(table);
          for (const TupleId rid : mod.tuples) {
            unlink(rid);
            grow(rid);
            st.resp_user[static_cast<size_t>(rid)] =
                resp.column(spec.responder_col).IsValue(rid)
                    ? resp.column(spec.responder_col).GetInt(rid)
                    : kInvalidTuple;
            st.resp_post[static_cast<size_t>(rid)] =
                resp.column(spec.post_col).IsValue(rid)
                    ? resp.column(spec.post_col).GetInt(rid)
                    : kInvalidTuple;
            link(rid);
          }
          break;
        }
      }
    }
  }

  const auto pit = post_index_.find(table);
  if (pit != post_index_.end()) {
    for (const int s : pit->second) {
      const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
      SpecState& st = state_[static_cast<size_t>(s)];
      auto set_author = [&](TupleId pid, TupleId a) {
        if (pid >= static_cast<TupleId>(st.post_author.size())) {
          st.post_author.resize(static_cast<size_t>(pid) + 1,
                                kInvalidTuple);
        }
        const TupleId old_a = st.post_author[static_cast<size_t>(pid)];
        if (old_a != kInvalidTuple) {
          EraseFrom(&st.posts_by_user[old_a], pid);
          if (st.posts_by_user[old_a].empty()) {
            st.posts_by_user.erase(old_a);
          }
        }
        st.post_author[static_cast<size_t>(pid)] = a;
        if (a != kInvalidTuple) st.posts_by_user[a].push_back(pid);
      };
      switch (mod.kind) {
        case OpKind::kInsertTuple: {
          const Value& av =
              mod.values[static_cast<size_t>(spec.author_col)];
          set_author(new_tuple, av.is_null() ? kInvalidTuple : av.int64());
          break;
        }
        case OpKind::kDeleteTuple:
          set_author(mod.tuples[0], kInvalidTuple);
          break;
        case OpKind::kDeleteValues:
        case OpKind::kInsertValues:
        case OpKind::kReplaceValues: {
          bool touches = false;
          for (const int c : mod.cols) touches |= c == spec.author_col;
          if (!touches) break;
          const Table& post = db_->table(table);
          for (const TupleId pid : mod.tuples) {
            const TupleId a = post.column(spec.author_col).IsValue(pid)
                                  ? post.column(spec.author_col).GetInt(pid)
                                  : kInvalidTuple;
            // Response pair lists keyed by the old author must be
            // re-homed: move every response of this post.
            const auto lit = st.responses_by_post.find(pid);
            std::vector<TupleId> rids =
                lit == st.responses_by_post.end() ? std::vector<TupleId>{}
                                                  : lit->second;
            const TupleId old_a = st.post_author[static_cast<size_t>(pid)];
            for (const TupleId rid : rids) {
              const TupleId u = st.resp_user[static_cast<size_t>(rid)];
              auto it = st.responses.find({u, old_a});
              if (it != st.responses.end()) {
                EraseFrom(&it->second, rid);
                if (it->second.empty()) st.responses.erase(it);
              }
            }
            set_author(pid, a);
            for (const TupleId rid : rids) {
              const TupleId u = st.resp_user[static_cast<size_t>(rid)];
              st.responses[{u, a}].push_back(rid);
            }
          }
          break;
        }
      }
    }
  }
}

void PairwisePropertyTool::OnApplied(const Modification& mod,
                                     const std::vector<Value>& old_values,
                                     TupleId new_tuple) {
  if (db_ == nullptr) return;
  const std::vector<NChange> changes =
      CollectNChanges(mod, new_tuple, /*pre_apply=*/false);
  for (const NChange& c : changes) ApplyNChange(c);
  ApplyStructural(mod, old_values, new_tuple);
}

int64_t PairwisePropertyTool::CurrentZeroPairs(int s) const {
  const Table* t = db_->FindTable(schema_.user_table);
  if (t == nullptr) return 0;  // user table dropped since the bind
  const int64_t users = t->NumTuples();
  return users * (users - 1) - rho_[static_cast<size_t>(s)].TotalMass();
}

int64_t PairwisePropertyTool::TargetZeroPairs(int s) const {
  const int64_t users = target_users_[static_cast<size_t>(s)];
  return users * (users - 1) -
         target_rho_[static_cast<size_t>(s)].TotalMass();
}

int64_t PairwisePropertyTool::CurrentZeroSelf(int s) const {
  const Table* t = db_->FindTable(schema_.user_table);
  if (t == nullptr) return 0;  // user table dropped since the bind
  return t->NumTuples() - rho_self_[static_cast<size_t>(s)].TotalMass();
}

int64_t PairwisePropertyTool::TargetZeroSelf(int s) const {
  return target_users_[static_cast<size_t>(s)] -
         target_rho_self_[static_cast<size_t>(s)].TotalMass();
}

double PairwisePropertyTool::SpecError(int s) const {
  // epsilon_rho = (1/N_user-pair) sum |rho - rho~| over interacting
  // pairs, where N_user-pair is the number of interacting (ordered)
  // pairs in the target - the normalization under which the paper's
  // bound of 2 is tight (Sec. VI-C1). Self-responses are measured the
  // same way and folded in.
  const int64_t denom = std::max<int64_t>(
      1, target_rho_[static_cast<size_t>(s)].TotalMass() +
             target_rho_self_[static_cast<size_t>(s)].TotalMass());
  int64_t sum =
      rho_[static_cast<size_t>(s)].L1Distance(target_rho_[static_cast<size_t>(s)]);
  sum += rho_self_[static_cast<size_t>(s)].L1Distance(
      target_rho_self_[static_cast<size_t>(s)]);
  return static_cast<double>(sum) / static_cast<double>(denom);
}

double PairwisePropertyTool::Error() const {
  if (specs_.empty() || db_ == nullptr) return 0.0;
  double sum = 0;
  for (size_t s = 0; s < specs_.size(); ++s) {
    sum += SpecError(static_cast<int>(s));
  }
  return sum / static_cast<double>(specs_.size());
}

double PairwisePropertyTool::ValidationPenalty(
    const Modification& mod) const {
  if (db_ == nullptr) return 0.0;
  return PenaltyOfChanges(
      CollectNChanges(mod, kInvalidTuple, /*pre_apply=*/true));
}

double PairwisePropertyTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  if (db_ == nullptr) return 0.0;
  std::vector<NChange> changes;
  for (const Modification& mod : mods) {
    const std::vector<NChange> one =
        CollectNChanges(mod, kInvalidTuple, /*pre_apply=*/true);
    changes.insert(changes.end(), one.begin(), one.end());
  }
  return PenaltyOfChanges(changes, veto_cap);
}

AccessScope PairwisePropertyTool::DeclaredScope() const {
  AccessScope scope;
  scope.known = true;
  for (const ResponseSpec& spec : specs_) {
    scope.AddWrite(schema_.TableIndex(spec.response_table),
                   AccessScope::kWholeTable);
    scope.AddWrite(schema_.TableIndex(spec.post_table),
                   AccessScope::kWholeTable);
  }
  const int user = schema_.TableIndex(schema_.user_table);
  if (user >= 0) scope.AddRead(user, AccessScope::kWholeTable);
  return scope;
}

double PairwisePropertyTool::PenaltyOfChanges(
    const std::vector<NChange>& changes, double veto_cap) const {
  if (changes.empty()) return 0.0;
  const bool capped = veto_cap != kNoPenaltyCap;
  // Simulate: n-values overlay, rho deltas.
  std::map<std::tuple<int, TupleId, TupleId>, int64_t> sim_n;
  std::map<std::pair<int, Key>, int64_t> rho_delta;
  std::map<std::pair<int, Key>, int64_t> self_delta;
  std::map<int, int64_t> zero_pair_delta, zero_self_delta;
  auto count = [&](int s, TupleId a, TupleId b) -> int64_t {
    const auto& n = state_[static_cast<size_t>(s)].n;
    const auto it = n.find({a, b});
    int64_t base = it == n.end() ? 0 : it->second;
    const auto sit = sim_n.find({s, a, b});
    if (sit != sim_n.end()) base += sit->second;
    return base;
  };
  auto denom_of = [&](int s) {
    return static_cast<double>(std::max<int64_t>(
        1, target_rho_[static_cast<size_t>(s)].TotalMass() +
               target_rho_self_[static_cast<size_t>(s)].TotalMass()));
  };
  // Capped pricing keeps each spec's partial penalty numerator exact
  // (in integers): the final loops' |cur+delta-tgt| - |cur-tgt| term,
  // summed over this spec's rho/self delta keys, re-adjusted on every
  // delta change. The early-exit test then sums a handful of exact
  // integer numerators instead of accumulating a drifting float.
  std::map<int, int64_t> spec_num;
  auto rho_term = [&](int s, const Key& key, int64_t delta) -> int64_t {
    const int64_t cur = rho_[static_cast<size_t>(s)].Count(key);
    const int64_t tgt = target_rho_[static_cast<size_t>(s)].Count(key);
    return std::llabs(cur + delta - tgt) - std::llabs(cur - tgt);
  };
  auto self_term = [&](int s, const Key& key, int64_t delta) -> int64_t {
    const int64_t cur = rho_self_[static_cast<size_t>(s)].Count(key);
    const int64_t tgt = target_rho_self_[static_cast<size_t>(s)].Count(key);
    return std::llabs(cur + delta - tgt) - std::llabs(cur - tgt);
  };
  auto rho_bump = [&](int s, const Key& key, int64_t d) {
    int64_t& slot = rho_delta[{s, key}];
    if (capped) spec_num[s] -= rho_term(s, key, slot);
    slot += d;
    if (capped) spec_num[s] += rho_term(s, key, slot);
  };
  auto self_bump = [&](int s, const Key& key, int64_t d) {
    int64_t& slot = self_delta[{s, key}];
    if (capped) spec_num[s] -= self_term(s, key, slot);
    slot += d;
    if (capped) spec_num[s] += self_term(s, key, slot);
  };
  // suffix[i] bounds how much the numerators can still move pricing
  // changes[i..): a pair change touches four rho entries by +-1, a
  // self change two self entries, and a +-1 delta change moves its
  // term by at most 1 — so 4/denom (2/denom for self) per change.
  // (Changes that land on the excluded zero key touch fewer entries;
  // the bound still covers them.)
  std::vector<double> suffix;
  if (capped) {
    suffix.assign(changes.size() + 1, 0.0);
    for (size_t i = changes.size(); i-- > 0;) {
      const double moves = changes[i].u == changes[i].v ? 2.0 : 4.0;
      suffix[i] = suffix[i + 1] + moves / denom_of(changes[i].spec);
    }
  }
  for (size_t ci = 0; ci < changes.size(); ++ci) {
    const NChange& c = changes[ci];
    if (c.u == c.v) {
      const int64_t x = count(c.spec, c.u, c.u);
      if (x > 0) {
        self_bump(c.spec, {x}, -1);
      } else {
        zero_self_delta[c.spec] -= 1;
      }
      const int64_t nx = x + c.delta;
      if (nx > 0) {
        self_bump(c.spec, {nx}, +1);
      } else {
        zero_self_delta[c.spec] += 1;
      }
    } else {
      const int64_t x = count(c.spec, c.u, c.v);
      const int64_t y = count(c.spec, c.v, c.u);
      if (x != 0 || y != 0) {
        rho_bump(c.spec, {x, y}, -1);
        rho_bump(c.spec, {y, x}, -1);
      } else {
        zero_pair_delta[c.spec] -= 2;
      }
      const int64_t nx = x + c.delta;
      if (nx != 0 || y != 0) {
        rho_bump(c.spec, {nx, y}, +1);
        rho_bump(c.spec, {y, nx}, +1);
      } else {
        zero_pair_delta[c.spec] += 2;
      }
    }
    sim_n[{c.spec, c.u, c.v}] += c.delta;
    if (capped) {
      double running = 0;
      for (const auto& [s, num] : spec_num) {
        running += static_cast<double>(num) / denom_of(s);
      }
      const double floor_penalty = (running - suffix[ci + 1]) /
                                   static_cast<double>(specs_.size());
      if (floor_penalty >
          veto_cap + kPenaltyCapSlack * (1.0 + std::fabs(veto_cap))) {
        return floor_penalty;
      }
    }
  }
  // The (0,0) mass is excluded from the measure, matching SpecError.
  (void)zero_pair_delta;
  (void)zero_self_delta;
  double penalty = 0;
  for (const auto& [sk, delta] : rho_delta) {
    if (delta == 0) continue;
    const auto& [s, key] = sk;
    const int64_t cur = rho_[static_cast<size_t>(s)].Count(key);
    const int64_t tgt = target_rho_[static_cast<size_t>(s)].Count(key);
    penalty += static_cast<double>(std::llabs(cur + delta - tgt) -
                                   std::llabs(cur - tgt)) /
               denom_of(s);
  }
  for (const auto& [sk, delta] : self_delta) {
    if (delta == 0) continue;
    const auto& [s, key] = sk;
    const int64_t cur = rho_self_[static_cast<size_t>(s)].Count(key);
    const int64_t tgt =
        target_rho_self_[static_cast<size_t>(s)].Count(key);
    penalty += static_cast<double>(std::llabs(cur + delta - tgt) -
                                   std::llabs(cur - tgt)) /
               denom_of(s);
  }
  return penalty / static_cast<double>(specs_.size());
}

Status PairwisePropertyTool::RepairTarget() {
  if (!bound()) return Status::Invalid("pairwise: RepairTarget needs Bind");
  for (size_t s = 0; s < specs_.size(); ++s) {
    FrequencyDistribution& rho = target_rho_[s];
    FrequencyDistribution& rho_self = target_rho_self_[s];
    const int64_t users =
        db_->FindTable(schema_.user_table)->NumTuples();
    target_users_[s] = users;
    // (P1) symmetry: rho(x, y) == rho(y, x).
    {
      FrequencyDistribution sym(2);
      for (const auto& [k, c] : rho.counts()) {
        const Key rev = {k[1], k[0]};
        const int64_t m = (c + rho.Count(rev)) / 2;
        if (m > 0 && k <= rev) {
          sym.Add(k, m);
          if (rev != k) sym.Add(rev, m);
        }
      }
      rho = std::move(sym);
    }
    // (P3) bounds: stored pair mass within |U|(|U|-1), self within |U|.
    while (rho.TotalMass() > users * (users - 1) && rho.NumKeys() > 0) {
      const Key k = rho.counts().begin()->first;
      rho.Add(k, -rho.Count(k));
      rho.Add({k[1], k[0]}, -rho.Count({k[1], k[0]}));
    }
    while (rho_self.TotalMass() > users && rho_self.NumKeys() > 0) {
      const Key k = rho_self.counts().begin()->first;
      rho_self.Add(k, -1);
    }
    // (P2)/(SP1) response budget: ordered sum_x x*n over pairs plus
    // self responses must equal |R|.
    const int64_t want =
        db_->FindTable(specs_[s].response_table)->NumTuples();
    auto budget = [&]() {
      return rho.WeightedSum(0) + rho_self.WeightedSum(0);
    };
    int64_t d = want - budget();
    while (d > 0) {
      rho.Add({1, 0}, 1);
      rho.Add({0, 1}, 1);
      --d;
    }
    while (d < 0) {
      // Take one response away from some pair (symmetrically).
      Key victim;
      for (const auto& [k, c] : rho.counts()) {
        if (k[0] > 0 && c > 0) {
          victim = k;
          break;
        }
      }
      if (!victim.empty()) {
        const Key rev = {victim[1], victim[0]};
        const Key down = {victim[0] - 1, victim[1]};
        const Key down_rev = {victim[1], victim[0] - 1};
        rho.Add(victim, -1);
        rho.Add(rev, -1);
        if (down[0] != 0 || down[1] != 0) {
          rho.Add(down, 1);
          rho.Add(down_rev, 1);
        }
        ++d;
        continue;
      }
      // Fall back to the self distribution.
      Key sv;
      for (const auto& [k, c] : rho_self.counts()) {
        if (k[0] > 0 && c > 0) {
          sv = k;
          break;
        }
      }
      if (sv.empty()) break;
      rho_self.Add(sv, -1);
      if (sv[0] > 1) rho_self.Add({sv[0] - 1}, 1);
      ++d;
    }
  }
  return Status::OK();
}

Status PairwisePropertyTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("pairwise: needs Bind");
  for (size_t s = 0; s < specs_.size(); ++s) {
    const FrequencyDistribution& rho = target_rho_[s];
    const FrequencyDistribution& rho_self = target_rho_self_[s];
    for (const auto& [k, c] : rho.counts()) {
      if (c < 0) return Status::Infeasible("negative rho count");
      if (rho.Count({k[1], k[0]}) != c) {
        return Status::Infeasible("P1 symmetry violated");
      }
    }
    const int64_t users =
        db_->FindTable(schema_.user_table)->NumTuples();
    if (rho.TotalMass() > users * (users - 1)) {
      return Status::Infeasible("P3 violated: too many pairs");
    }
    if (rho_self.TotalMass() > users) {
      return Status::Infeasible("SP2 violated: too many self users");
    }
    const int64_t want =
        db_->FindTable(specs_[s].response_table)->NumTuples();
    if (rho.WeightedSum(0) + rho_self.WeightedSum(0) != want) {
      return Status::Infeasible("P2/SP1 violated: response budget");
    }
  }
  return Status::OK();
}

TupleId PairwisePropertyTool::EnsurePost(TweakContext* ctx, int s,
                                         TupleId v) {
  const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
  SpecState& st = state_[static_cast<size_t>(s)];
  const auto pit = st.posts_by_user.find(v);
  if (pit != st.posts_by_user.end() && !pit->second.empty()) {
    const auto& posts = pit->second;
    return posts[static_cast<size_t>(ctx->rng()->UniformInt(
        0, static_cast<int64_t>(posts.size()) - 1))];
  }
  Table* post = db_->FindTable(spec.post_table);
  if (post == nullptr) return kInvalidTuple;
  // Steal a post from a user with more than one (Theorem 5).
  for (int tries = 0; tries < 32; ++tries) {
    const TupleId cand = ctx->rng()->UniformInt(0, post->NumSlots() - 1);
    if (!post->IsLive(cand)) continue;
    const TupleId w = st.post_author[static_cast<size_t>(cand)];
    if (w == kInvalidTuple || w == v) continue;
    const auto wit = st.posts_by_user.find(w);
    if (wit == st.posts_by_user.end() || wit->second.size() < 2) continue;
    // Pick w's post with the fewest responses and a sibling to absorb
    // its responses.
    TupleId victim = kInvalidTuple;
    size_t fewest = SIZE_MAX;
    for (const TupleId p : wit->second) {
      const auto lit = st.responses_by_post.find(p);
      const size_t nr = lit == st.responses_by_post.end()
                            ? 0
                            : lit->second.size();
      if (nr < fewest) {
        fewest = nr;
        victim = p;
      }
    }
    TupleId sibling = kInvalidTuple;
    for (const TupleId p : wit->second) {
      if (p != victim) {
        sibling = p;
        break;
      }
    }
    if (victim == kInvalidTuple || sibling == kInvalidTuple) continue;
    // Shift the victim's responses to the sibling (pairs unchanged:
    // both posts belong to w).
    const auto lit = st.responses_by_post.find(victim);
    const std::vector<TupleId> rids =
        lit == st.responses_by_post.end() ? std::vector<TupleId>{}
                                          : lit->second;
    if (ctx->batch_hint() > 1 && rids.size() > 1) {
      // One broadcast modification re-homes every response at once.
      Modification shift = Modification::ReplaceValues(
          spec.response_table, rids, {spec.post_col},
          {Value(static_cast<int64_t>(sibling))});
      Status sh = ctx->TryApply(shift);
      if (sh.IsValidationFailed()) sh = ctx->ForceApply(shift);
      if (!sh.ok()) return kInvalidTuple;
    } else {
      for (const TupleId rid : rids) {
        Modification shift = Modification::ReplaceValues(
            spec.response_table, {rid}, {spec.post_col},
            {Value(static_cast<int64_t>(sibling))});
        Status sh = ctx->TryApply(shift);
        if (sh.IsValidationFailed()) sh = ctx->ForceApply(shift);
        if (!sh.ok()) return kInvalidTuple;
      }
    }
    // Re-author the now-empty post to v.
    Modification reauthor = Modification::ReplaceValues(
        spec.post_table, {victim}, {spec.author_col},
        {Value(static_cast<int64_t>(v))});
    Status ra = ctx->TryApply(reauthor);
    if (ra.IsValidationFailed()) ra = ctx->ForceApply(reauthor);
    if (!ra.ok()) return kInvalidTuple;
    return victim;
  }
  // Last resort: create a post for v (at most |U| - |P| of these).
  std::vector<Value> row(static_cast<size_t>(post->num_columns()));
  TupleId tmpl = kInvalidTuple;
  for (int tries = 0; tries < 32 && tmpl == kInvalidTuple; ++tries) {
    const TupleId cand = ctx->rng()->UniformInt(0, post->NumSlots() - 1);
    if (post->IsLive(cand)) tmpl = cand;
  }
  for (int c = 0; c < post->num_columns(); ++c) {
    if (tmpl != kInvalidTuple) {
      row[static_cast<size_t>(c)] = post->column(c).Get(tmpl);
    } else if (post->column(c).type() == ColumnType::kString) {
      row[static_cast<size_t>(c)] = Value(std::string());
    } else if (post->column(c).type() == ColumnType::kDouble) {
      row[static_cast<size_t>(c)] = Value(0.0);
    } else {
      row[static_cast<size_t>(c)] = Value(int64_t{0});
    }
  }
  row[static_cast<size_t>(spec.author_col)] =
      Value(static_cast<int64_t>(v));
  Modification ins = Modification::InsertTuple(spec.post_table, row);
  TupleId pid = kInvalidTuple;
  Status st2 = ctx->TryApply(ins, &pid);
  if (st2.IsValidationFailed()) st2 = ctx->ForceApply(ins, &pid);
  if (!st2.ok()) return kInvalidTuple;
  ++st.created_posts;
  return pid;
}

bool PairwisePropertyTool::AdjustResponses(TweakContext* ctx, int s,
                                           TupleId u, TupleId v,
                                           int64_t delta) {
  const ResponseSpec& spec = specs_[static_cast<size_t>(s)];
  SpecState& st = state_[static_cast<size_t>(s)];
  int veto_budget = max_attempts_;
  while (delta < 0) {
    const auto lit = st.responses.find({u, v});
    if (lit == st.responses.end() || lit->second.empty()) return false;
    const auto& list = lit->second;
    // Batched deletion: propose a span of victims as one composite
    // vote; fall back to the per-victim escalation path on veto.
    if (ctx->batch_hint() > 1 && delta < -1 && list.size() > 1) {
      const size_t take = std::min<size_t>(
          static_cast<size_t>(std::min<int64_t>(-delta, ctx->batch_hint())),
          list.size());
      const size_t boff = static_cast<size_t>(ctx->rng()->UniformInt(
          0, static_cast<int64_t>(list.size()) - 1));
      std::vector<Modification> batch;
      for (size_t j = 0; j < take; ++j) {
        batch.push_back(Modification::DeleteTuple(
            spec.response_table, list[(boff + j) % list.size()]));
      }
      if (batch.size() > 1 && ctx->TryApplyBatch(batch).ok()) {
        delta += static_cast<int64_t>(batch.size());
        continue;
      }
    }
    const TupleId victim = list[static_cast<size_t>(ctx->rng()->UniformInt(
        0, static_cast<int64_t>(list.size()) - 1))];
    Modification del =
        Modification::DeleteTuple(spec.response_table, victim);
    Status sd = ctx->TryApply(del);
    if (sd.IsValidationFailed()) {
      if (veto_budget-- > 0) continue;  // try another victim
      sd = ctx->ForceApply(del);
    }
    if (!sd.ok()) return false;
    ++delta;
  }
  while (delta > 0) {
    Table* resp = db_->FindTable(spec.response_table);
    if (resp == nullptr) return false;  // table dropped since the bind
    auto make_row = [&]() {
      std::vector<Value> row(static_cast<size_t>(resp->num_columns()));
      TupleId tmpl = kInvalidTuple;
      for (int tries = 0; tries < 32 && tmpl == kInvalidTuple; ++tries) {
        const TupleId cand =
            ctx->rng()->UniformInt(0, resp->NumSlots() - 1);
        if (resp->IsLive(cand)) tmpl = cand;
      }
      for (int c = 0; c < resp->num_columns(); ++c) {
        if (tmpl != kInvalidTuple) {
          row[static_cast<size_t>(c)] = resp->column(c).Get(tmpl);
        } else if (resp->column(c).type() == ColumnType::kString) {
          row[static_cast<size_t>(c)] = Value(std::string());
        } else if (resp->column(c).type() == ColumnType::kDouble) {
          row[static_cast<size_t>(c)] = Value(0.0);
        } else {
          row[static_cast<size_t>(c)] = Value(int64_t{0});
        }
      }
      row[static_cast<size_t>(spec.responder_col)] =
          Value(static_cast<int64_t>(u));
      return row;
    };
    // Batched insertion: every missing response proposed as one span
    // (each under its own EnsurePost destination), degrading to the
    // per-insert escalation below when the span is vetoed.
    if (ctx->batch_hint() > 1 && delta > 1) {
      const int64_t pending =
          std::min<int64_t>(delta, ctx->batch_hint());
      std::vector<Modification> batch;
      for (int64_t j = 0; j < pending; ++j) {
        const TupleId p = EnsurePost(ctx, s, v);
        if (p == kInvalidTuple) return false;
        std::vector<Value> row = make_row();
        row[static_cast<size_t>(spec.post_col)] =
            Value(static_cast<int64_t>(p));
        batch.push_back(
            Modification::InsertTuple(spec.response_table, row));
      }
      if (ctx->TryApplyBatch(batch).ok()) {
        delta -= pending;
        continue;
      }
    }
    std::vector<Value> row = make_row();
    // Try several of v's posts before forcing: inserting under a
    // different post can satisfy the other tools' validators (e.g. the
    // linear tool cares which post gains its first response).
    bool inserted = false;
    while (!inserted) {
      const TupleId p = EnsurePost(ctx, s, v);
      if (p == kInvalidTuple) return false;
      row[static_cast<size_t>(spec.post_col)] =
          Value(static_cast<int64_t>(p));
      Modification ins =
          Modification::InsertTuple(spec.response_table, row);
      Status si = ctx->TryApply(ins);
      if (si.IsValidationFailed()) {
        if (veto_budget-- > 0) continue;
        si = ctx->ForceApply(ins);
      }
      if (!si.ok()) return false;
      inserted = true;
    }
    --delta;
  }
  return true;
}

bool PairwisePropertyTool::ConvertPair(TweakContext* ctx, int s,
                                       const Key& from, const Key& to) {
  SpecState& st = state_[static_cast<size_t>(s)];
  TupleId u = kInvalidTuple, v = kInvalidTuple;
  if (from[0] == 0 && from[1] == 0) {
    const Table* users = db_->FindTable(schema_.user_table);
    for (int tries = 0; tries < 96; ++tries) {
      const TupleId a = ctx->rng()->UniformInt(0, users->NumSlots() - 1);
      const TupleId b = ctx->rng()->UniformInt(0, users->NumSlots() - 1);
      if (a == b || !users->IsLive(a) || !users->IsLive(b)) continue;
      if (st.n.count({a, b}) != 0 || st.n.count({b, a}) != 0) continue;
      // Early tries insist on receivers that already get responses
      // (keeps the user-level linear reachability intact); late tries
      // accept anyone.
      if (tries < 64) {
        if (to[0] > 0 && st.incoming.count(b) == 0) continue;
        if (to[1] > 0 && st.incoming.count(a) == 0) continue;
      }
      u = a;
      v = b;
      break;
    }
  } else {
    const auto bit = st.buckets.find(from);
    if (bit == st.buckets.end() || bit->second.empty()) return false;
    auto incoming_of = [&](TupleId w) {
      const auto it = st.incoming.find(w);
      return it == st.incoming.end() ? int64_t{0} : it->second;
    };
    // Probe a few pairs; prefer ones whose receivers keep other
    // incoming responses after the conversion (no reachability flip).
    auto it = bit->second.begin();
    std::advance(it, ctx->rng()->UniformInt(
                         0, std::min<int64_t>(
                                static_cast<int64_t>(bit->second.size()) - 1,
                                15)));
    for (int probes = 0;
         probes < 12 && std::next(it) != bit->second.end(); ++probes) {
      const bool v_safe =
          !(to[0] == 0 && from[0] > 0) || incoming_of(it->second) > from[0];
      const bool u_safe =
          !(to[1] == 0 && from[1] > 0) || incoming_of(it->first) > from[1];
      if (v_safe && u_safe) break;
      ++it;
    }
    u = it->first;
    v = it->second;
  }
  if (u == kInvalidTuple || v == kInvalidTuple) return false;
  if (!AdjustResponses(ctx, s, u, v, to[0] - from[0])) return false;
  return AdjustResponses(ctx, s, v, u, to[1] - from[1]);
}

bool PairwisePropertyTool::ConvertSelf(TweakContext* ctx, int s,
                                       int64_t from, int64_t to) {
  SpecState& st = state_[static_cast<size_t>(s)];
  TupleId u = kInvalidTuple;
  if (from == 0) {
    const Table* users = db_->FindTable(schema_.user_table);
    for (int tries = 0; tries < 64; ++tries) {
      const TupleId a = ctx->rng()->UniformInt(0, users->NumSlots() - 1);
      if (users->IsLive(a) && st.n.count({a, a}) == 0) {
        u = a;
        break;
      }
    }
  } else {
    const auto bit = st.self_buckets.find(from);
    if (bit == st.self_buckets.end() || bit->second.empty()) return false;
    auto it = bit->second.begin();
    std::advance(it, ctx->rng()->UniformInt(
                         0, std::min<int64_t>(
                                static_cast<int64_t>(bit->second.size()) - 1,
                                15)));
    u = *it;
  }
  if (u == kInvalidTuple) return false;
  return AdjustResponses(ctx, s, u, u, to - from);
}

Status PairwisePropertyTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("pairwise: Tweak needs Bind");
  for (size_t s = 0; s < specs_.size(); ++s) {
    const int si = static_cast<int>(s);
    // --- ordered pair distribution (Algorithm 3) ---
    int64_t guard = rho_[s].L1Distance(target_rho_[s]) +
                    std::llabs(CurrentZeroPairs(si) - TargetZeroPairs(si)) +
                    64;
    std::set<Key> stuck;
    const Key zero = {0, 0};
    while (guard-- > 0) {
      Key deficit;
      bool found = false;
      for (const auto& [k, c] : target_rho_[s].counts()) {
        if (stuck.count(k) == 0 && rho_[s].Count(k) < c) {
          deficit = k;
          found = true;
          break;
        }
      }
      if (!found && stuck.count(zero) == 0 &&
          CurrentZeroPairs(si) < TargetZeroPairs(si)) {
        deficit = zero;
        found = true;
      }
      if (!found) break;
      // Surpluses by Manhattan distance.
      std::vector<std::pair<int64_t, Key>> surpluses;
      for (const auto& [k, c] : rho_[s].counts()) {
        if (c > target_rho_[s].Count(k)) {
          surpluses.emplace_back(ManhattanDistance(k, deficit), k);
        }
      }
      if (CurrentZeroPairs(si) > TargetZeroPairs(si)) {
        surpluses.emplace_back(ManhattanDistance(zero, deficit), zero);
      }
      std::sort(surpluses.begin(), surpluses.end());
      bool converted = false;
      for (const auto& [dist, surplus] : surpluses) {
        if (ConvertPair(ctx, si, surplus, deficit)) {
          converted = true;
          break;
        }
      }
      if (!converted) stuck.insert(deficit);
    }
    // --- self distribution (Theorem 11) ---
    guard = rho_self_[s].L1Distance(target_rho_self_[s]) +
            std::llabs(CurrentZeroSelf(si) - TargetZeroSelf(si)) + 32;
    std::set<int64_t> self_stuck;
    while (guard-- > 0) {
      int64_t deficit = -1;
      for (const auto& [k, c] : target_rho_self_[s].counts()) {
        if (self_stuck.count(k[0]) == 0 && rho_self_[s].Count(k) < c) {
          deficit = k[0];
          break;
        }
      }
      if (deficit < 0 && self_stuck.count(0) == 0 &&
          CurrentZeroSelf(si) < TargetZeroSelf(si)) {
        deficit = 0;
      }
      if (deficit < 0) break;
      std::vector<std::pair<int64_t, int64_t>> surpluses;
      for (const auto& [k, c] : rho_self_[s].counts()) {
        if (c > target_rho_self_[s].Count(k)) {
          surpluses.emplace_back(std::llabs(k[0] - deficit), k[0]);
        }
      }
      if (CurrentZeroSelf(si) > TargetZeroSelf(si)) {
        surpluses.emplace_back(deficit, 0);
      }
      std::sort(surpluses.begin(), surpluses.end());
      bool converted = false;
      for (const auto& [dist, surplus] : surpluses) {
        if (ConvertSelf(ctx, si, surplus, deficit)) {
          converted = true;
          break;
        }
      }
      if (!converted) self_stuck.insert(deficit);
    }
  }
  return Status::OK();
}

Status PairwisePropertyTool::SaveTarget(std::ostream* out) const {
  *out << "pairwise " << specs_.size() << "\n";
  for (size_t s = 0; s < specs_.size(); ++s) {
    *out << "spec " << target_users_[s] << "\n";
    target_rho_[s].Write(out);
    target_rho_self_[s].Write(out);
  }
  return Status::OK();
}

Status PairwisePropertyTool::LoadTarget(std::istream* in) {
  std::string tag;
  size_t n = 0;
  if (!(*in >> tag >> n) || tag != "pairwise" || n != specs_.size()) {
    return Status::IoError("pairwise: bad target header");
  }
  for (size_t s = 0; s < n; ++s) {
    if (!(*in >> tag >> target_users_[s]) || tag != "spec") {
      return Status::IoError("pairwise: bad spec header");
    }
    ASPECT_ASSIGN_OR_RETURN(target_rho_[s], FrequencyDistribution::Read(in));
    ASPECT_ASSIGN_OR_RETURN(target_rho_self_[s],
                            FrequencyDistribution::Read(in));
    if (target_rho_[s].dim() != 2 || target_rho_self_[s].dim() != 1) {
      return Status::IoError("pairwise: distribution dim mismatch");
    }
  }
  return Status::OK();
}

}  // namespace aspect
