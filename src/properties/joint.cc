#include "properties/joint.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace aspect {

JointDistributionTool::JointDistributionTool(const Schema& schema,
                                             std::string table,
                                             std::vector<std::string> columns,
                                             std::string tool_name)
    : name_(tool_name.empty() ? "joint:" + table + "." + Join(columns, "+")
                              : std::move(tool_name)),
      table_(std::move(table)),
      column_names_(std::move(columns)),
      current_(static_cast<int>(column_names_.size())),
      target_(static_cast<int>(column_names_.size())) {
  (void)schema;
}

JointDistributionTool::Key JointDistributionTool::ReadKey(TupleId t) const {
  const Table* tbl = db_->FindTable(table_);
  Key key;
  key.reserve(cols_.size());
  for (const int c : cols_) {
    if (t >= tbl->NumSlots() || !tbl->column(c).IsValue(t)) return Key{};
    key.push_back(tbl->column(c).GetInt(t));
  }
  return key;
}

FrequencyDistribution JointDistributionTool::Extract(
    const Database& db) const {
  FrequencyDistribution dist(static_cast<int>(column_names_.size()));
  const Table* t = db.FindTable(table_);
  if (t == nullptr) return dist;
  std::vector<int> cols;
  for (const std::string& name : column_names_) {
    const int c = t->ColumnIndex(name);
    if (c < 0) return dist;
    cols.push_back(c);
  }
  t->ForEachLive([&](TupleId tid) {
    Key key;
    for (const int c : cols) {
      if (!t->column(c).IsValue(tid)) return;
      key.push_back(t->column(c).GetInt(tid));
    }
    dist.Add(key, 1);
  });
  return dist;
}

Status JointDistributionTool::SetTargetFromDataset(
    const Database& ground_truth) {
  target_ = Extract(ground_truth);
  return Status::OK();
}

Status JointDistributionTool::SetTargetDistribution(
    FrequencyDistribution target) {
  if (target.dim() != static_cast<int>(column_names_.size())) {
    return Status::Invalid("joint: target dimension mismatch");
  }
  target_ = std::move(target);
  return Status::OK();
}

Status JointDistributionTool::RepairTarget() {
  if (!bound()) return Status::Invalid("joint: RepairTarget needs Bind");
  const int64_t want = current_.TotalMass();
  const int64_t have = target_.TotalMass();
  if (have == want || have == 0) return Status::OK();
  FrequencyDistribution scaled(target_.dim());
  int64_t placed = 0;
  Key largest;
  int64_t largest_count = -1;
  for (const auto& [k, c] : target_.counts()) {
    const int64_t v = static_cast<int64_t>(std::llround(
        static_cast<double>(c) * static_cast<double>(want) /
        static_cast<double>(have)));
    if (v > 0) scaled.Add(k, v);
    placed += v;
    if (c > largest_count) {
      largest_count = c;
      largest = k;
    }
  }
  if (placed != want && !largest.empty()) {
    const int64_t fix =
        std::max<int64_t>(-scaled.Count(largest), want - placed);
    scaled.Add(largest, fix);
  }
  target_ = std::move(scaled);
  return Status::OK();
}

Status JointDistributionTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("joint: needs Bind");
  for (const auto& [k, c] : target_.counts()) {
    if (c < 0) return Status::Infeasible("joint: negative count");
  }
  if (target_.TotalMass() != current_.TotalMass()) {
    return Status::Infeasible("joint: total mass != population");
  }
  return Status::OK();
}

Status JointDistributionTool::Bind(Database* db) {
  const Table* t = db->FindTable(table_);
  if (t == nullptr) return Status::KeyError("joint: no table " + table_);
  cols_.clear();
  for (const std::string& name : column_names_) {
    const int c = t->ColumnIndex(name);
    if (c < 0) return Status::KeyError("joint: no column " + name);
    if (t->column(c).type() != ColumnType::kInt64) {
      return Status::Invalid("joint: columns must be int64");
    }
    cols_.push_back(c);
  }
  db_ = db;
  current_ = Extract(*db);
  tuple_key_.assign(static_cast<size_t>(t->NumSlots()), Key{});
  tuples_by_key_.clear();
  t->ForEachLive([&](TupleId tid) {
    const Key key = ReadKey(tid);
    if (key.empty()) return;
    tuple_key_[static_cast<size_t>(tid)] = key;
    tuples_by_key_[key].push_back(tid);
  });
  db_->AddListener(this);
  return Status::OK();
}

void JointDistributionTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
  tuple_key_.clear();
  tuples_by_key_.clear();
}

double JointDistributionTool::Error() const {
  const int64_t n = std::max<int64_t>(1, target_.TotalMass());
  return static_cast<double>(current_.L1Distance(target_)) /
         static_cast<double>(n);
}

void JointDistributionTool::OnApplied(const Modification& mod,
                                      const std::vector<Value>& old_values,
                                      TupleId new_tuple) {
  (void)old_values;  // pre-images live in the key cache
  if (db_ == nullptr || mod.table != table_) return;
  auto retag = [&](TupleId t, const Key& new_key) {
    if (t >= static_cast<TupleId>(tuple_key_.size())) {
      tuple_key_.resize(static_cast<size_t>(t) + 1, Key{});
    }
    Key& cached = tuple_key_[static_cast<size_t>(t)];
    if (cached == new_key) return;
    if (!cached.empty()) {
      current_.Add(cached, -1);
      auto& list = tuples_by_key_[cached];
      const auto it = std::find(list.begin(), list.end(), t);
      if (it != list.end()) {
        *it = list.back();
        list.pop_back();
      }
      if (list.empty()) tuples_by_key_.erase(cached);
    }
    cached = new_key;
    if (!new_key.empty()) {
      current_.Add(new_key, 1);
      tuples_by_key_[new_key].push_back(t);
    }
  };
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues: {
      bool touches = false;
      for (const int c : mod.cols) {
        touches |= std::find(cols_.begin(), cols_.end(), c) != cols_.end();
      }
      if (!touches) return;
      for (const TupleId t : mod.tuples) retag(t, ReadKey(t));
      break;
    }
    case OpKind::kInsertTuple: {
      retag(new_tuple, ReadKey(new_tuple));
      break;
    }
    case OpKind::kDeleteTuple:
      retag(mod.tuples[0], Key{});
      break;
  }
}

double JointDistributionTool::ValidationPenalty(
    const Modification& mod) const {
  if (db_ == nullptr || mod.table != table_) return 0.0;
  // Simulated per-key deltas.
  std::map<Key, int64_t> delta;
  auto cached = [&](TupleId t) -> Key {
    return t < static_cast<TupleId>(tuple_key_.size())
               ? tuple_key_[static_cast<size_t>(t)]
               : Key{};
  };
  auto overlay_key = [&](TupleId t) -> Key {
    Key key;
    const Table* tbl = db_->FindTable(table_);
    for (const int c : cols_) {
      int j = -1;
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] == c) j = static_cast<int>(cj);
      }
      if (j >= 0) {
        if (mod.kind == OpKind::kDeleteValues ||
            mod.values[static_cast<size_t>(j)].is_null()) {
          return Key{};
        }
        key.push_back(mod.values[static_cast<size_t>(j)].int64());
      } else {
        if (!tbl->column(c).IsValue(t)) return Key{};
        key.push_back(tbl->column(c).GetInt(t));
      }
    }
    return key;
  };
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues: {
      bool touches = false;
      for (const int c : mod.cols) {
        touches |= std::find(cols_.begin(), cols_.end(), c) != cols_.end();
      }
      if (!touches) return 0.0;
      for (const TupleId t : mod.tuples) {
        const Key before = cached(t);
        const Key after = overlay_key(t);
        if (before == after) continue;
        if (!before.empty()) --delta[before];
        if (!after.empty()) ++delta[after];
      }
      break;
    }
    case OpKind::kInsertTuple: {
      Key key;
      for (const int c : cols_) {
        const Value& v = mod.values[static_cast<size_t>(c)];
        if (v.is_null()) {
          key.clear();
          break;
        }
        key.push_back(v.int64());
      }
      if (!key.empty()) ++delta[key];
      break;
    }
    case OpKind::kDeleteTuple: {
      const Key before = cached(mod.tuples[0]);
      if (!before.empty()) --delta[before];
      break;
    }
  }
  double penalty = 0;
  const int64_t n = std::max<int64_t>(1, target_.TotalMass());
  for (const auto& [key, d] : delta) {
    if (d == 0) continue;
    const int64_t cur = current_.Count(key);
    const int64_t tgt = target_.Count(key);
    penalty += static_cast<double>(std::llabs(cur + d - tgt) -
                                   std::llabs(cur - tgt)) /
               static_cast<double>(n);
  }
  return penalty;
}

Status JointDistributionTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("joint: Tweak needs Bind");
  int64_t guard = current_.L1Distance(target_) + 16;
  int veto_budget = max_attempts_;
  while (guard-- > 0) {
    // Find a deficit key and the Manhattan-closest surplus key.
    Key deficit;
    bool found = false;
    for (const auto& [k, c] : target_.counts()) {
      if (current_.Count(k) < c) {
        deficit = k;
        found = true;
        break;
      }
    }
    if (!found) break;
    Key surplus;
    int64_t best = -1;
    for (const auto& [k, c] : current_.counts()) {
      if (c <= target_.Count(k)) continue;
      const int64_t d = ManhattanDistance(k, deficit);
      if (best < 0 || d < best) {
        best = d;
        surplus = k;
      }
    }
    if (best < 0) break;
    const auto lit = tuples_by_key_.find(surplus);
    if (lit == tuples_by_key_.end() || lit->second.empty()) break;
    const TupleId victim = lit->second[static_cast<size_t>(
        ctx->rng()->UniformInt(0, static_cast<int64_t>(lit->second.size()) -
                                      1))];
    // Replace only the columns that differ.
    std::vector<int> change_cols;
    std::vector<Value> change_vals;
    for (size_t i = 0; i < cols_.size(); ++i) {
      if (surplus[i] != deficit[i]) {
        change_cols.push_back(cols_[i]);
        change_vals.push_back(Value(deficit[i]));
      }
    }
    Modification mod = Modification::ReplaceValues(
        table_, {victim}, change_cols, change_vals);
    Status st = ctx->TryApply(mod);
    if (st.IsValidationFailed()) {
      if (veto_budget-- > 0) continue;  // retry with another victim
      st = ctx->ForceApply(mod);
    }
    ASPECT_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

FrequencyDistribution JointDistributionTool::Marginal(
    const FrequencyDistribution& dist, int dim) {
  FrequencyDistribution out(1);
  for (const auto& [k, c] : dist.counts()) {
    out.Add({k[static_cast<size_t>(dim)]}, c);
  }
  return out;
}

}  // namespace aspect
