#include "properties/simple.h"

#include <algorithm>
#include <cmath>

#include "aspect/target_generator.h"
#include "common/string_util.h"

namespace aspect {

// ---------------------------------------------------------------------
// ColumnFreqTool
// ---------------------------------------------------------------------

ColumnFreqTool::ColumnFreqTool(const Schema& schema, std::string table,
                               std::string column, std::string tool_name)
    : name_(tool_name.empty() ? "freq:" + table + "." + column
                              : std::move(tool_name)),
      table_(std::move(table)),
      column_(std::move(column)) {
  table_index_ = schema.TableIndex(table_);
  if (table_index_ >= 0) {
    col_index_ =
        schema.tables[static_cast<size_t>(table_index_)].ColumnIndex(column_);
  }
}

void ColumnFreqTool::SetRowRange(int64_t lo, int64_t hi) {
  if (lo > hi) std::swap(lo, hi);
  has_range_ = true;
  range_lo_ = lo;
  range_hi_ = hi;
  name_ = StrFormat("%s@%lld-%lld", name_.c_str(),
                    static_cast<long long>(lo), static_cast<long long>(hi));
}

AccessScope ColumnFreqTool::DeclaredScope() const {
  AccessScope scope;
  if (table_index_ < 0 || col_index_ < 0) return scope;  // unknown
  scope.known = true;
  if (has_range_) {
    // The range filter runs before every cell access, so the column
    // footprint is certified to stay inside [lo, hi]. The row-structure
    // read below stays whole-table: live-tuple membership of in-range
    // rows is still read through ForEachLive.
    scope.AddWriteRange(table_index_, col_index_, range_lo_, range_hi_);
  } else {
    scope.AddWrite(table_index_, col_index_);
  }
  // Tweak scans the live-tuple set (ForEachLive / NumSlots) and the
  // frequency statistics count one entry per live row, so row
  // membership is part of the read contract, not just the column.
  scope.AddRead(table_index_, AccessScope::kRowStructure);
  return scope;
}

FrequencyDistribution ColumnFreqTool::Extract(const Database& db) const {
  FrequencyDistribution dist(1);
  const Table* t = db.FindTable(table_);
  if (t == nullptr) return dist;
  const int col = t->ColumnIndex(column_);
  if (col < 0) return dist;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;  // before any cell read
    if (t->column(col).IsValue(tid)) {
      dist.Add({t->column(col).GetInt(tid)}, 1);
    }
  });
  return dist;
}

Status ColumnFreqTool::SetTargetFromDataset(const Database& ground_truth) {
  target_ = Extract(ground_truth);
  return Status::OK();
}

Status ColumnFreqTool::SetTargetDistribution(FrequencyDistribution target) {
  if (target.dim() != 1) {
    return Status::Invalid("column frequency targets are 1-dimensional");
  }
  target_ = std::move(target);
  return Status::OK();
}

Status ColumnFreqTool::SetTargetByExtrapolation(
    const std::vector<const Database*>& snapshots, double target_size) {
  ASPECT_ASSIGN_OR_RETURN(
      FrequencyDistribution predicted,
      ExtrapolateDistribution(
          snapshots,
          [this](const Database& db) { return Extract(db); }, target_size));
  target_ = std::move(predicted);
  return Status::OK();
}

Status ColumnFreqTool::RepairTarget() {
  if (!bound()) return Status::Invalid("freq: RepairTarget needs Bind");
  // Rescale counts proportionally so their total equals the bound
  // table's (non-null) population.
  const int64_t want = current_.TotalMass();
  const int64_t have = target_.TotalMass();
  if (have == want || have == 0) return Status::OK();
  FrequencyDistribution scaled(1);
  int64_t placed = 0;
  FrequencyDistribution::Key largest;
  int64_t largest_count = -1;
  for (const auto& [k, c] : target_.counts()) {
    const int64_t v = static_cast<int64_t>(std::llround(
        static_cast<double>(c) * static_cast<double>(want) /
        static_cast<double>(have)));
    if (v > 0) scaled.Add(k, v);
    placed += v;
    if (c > largest_count) {
      largest_count = c;
      largest = k;
    }
  }
  if (placed != want && !largest.empty()) {
    // Put the rounding residual on the most frequent value; clamp so
    // the entry never goes negative.
    const int64_t fix =
        std::max<int64_t>(-scaled.Count(largest), want - placed);
    scaled.Add(largest, fix);
  }
  target_ = std::move(scaled);
  return Status::OK();
}

Status ColumnFreqTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("freq: needs Bind");
  for (const auto& [k, c] : target_.counts()) {
    if (c < 0) return Status::Infeasible("negative frequency");
  }
  if (target_.TotalMass() != current_.TotalMass()) {
    return Status::Infeasible(StrFormat(
        "frequency total %lld != population %lld",
        static_cast<long long>(target_.TotalMass()),
        static_cast<long long>(current_.TotalMass())));
  }
  return Status::OK();
}

Status ColumnFreqTool::Bind(Database* db) {
  if (db->FindTable(table_) == nullptr ||
      db->FindTable(table_)->ColumnIndex(column_) < 0) {
    return Status::KeyError(
        StrFormat("freq: no column %s.%s", table_.c_str(), column_.c_str()));
  }
  db_ = db;
  current_ = Extract(*db_);
  db_->AddListener(this);
  return Status::OK();
}

void ColumnFreqTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
}

Status ColumnFreqTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  return Status::OK();
}

double ColumnFreqTool::Error() const {
  const int64_t n = std::max<int64_t>(1, target_.TotalMass());
  return static_cast<double>(current_.L1Distance(target_)) /
         static_cast<double>(n);
}

void ColumnFreqTool::OnApplied(const Modification& mod,
                               const std::vector<Value>& old_values,
                               TupleId new_tuple) {
  if (db_ == nullptr || mod.table != table_) return;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return;  // table dropped since the bind
  const int col = t->ColumnIndex(column_);
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues: {
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
          if (!InRange(mod.tuples[tj])) continue;
          const Value& old_v = old_values[tj * mod.cols.size() + cj];
          if (!old_v.is_null()) current_.Add({old_v.int64()}, -1);
          if (mod.kind != OpKind::kDeleteValues &&
              !mod.values[cj].is_null()) {
            current_.Add({mod.values[cj].int64()}, 1);
          }
        }
      }
      break;
    }
    case OpKind::kInsertTuple: {
      if (!InRange(new_tuple)) break;
      const Value& v = mod.values[static_cast<size_t>(col)];
      if (!v.is_null()) current_.Add({v.int64()}, 1);
      break;
    }
    case OpKind::kDeleteTuple: {
      if (!InRange(mod.tuples[0])) break;
      const Value& v = old_values[static_cast<size_t>(col)];
      if (!v.is_null()) current_.Add({v.int64()}, -1);
      break;
    }
  }
}

double ColumnFreqTool::ValidationPenalty(const Modification& mod) const {
  if (db_ == nullptr || mod.table != table_) return 0.0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0.0;  // table dropped: nothing to defend
  const int col = t->ColumnIndex(column_);
  const int64_t n = std::max<int64_t>(1, target_.TotalMass());
  auto delta_for = [&](const Value& old_v, const Value& new_v) {
    double d = 0;
    if (!old_v.is_null()) {
      const int64_t cur = current_.Count({old_v.int64()});
      const int64_t tgt = target_.Count({old_v.int64()});
      d += std::llabs(cur - 1 - tgt) - std::llabs(cur - tgt);
    }
    if (!new_v.is_null() && new_v != old_v) {
      const int64_t cur = current_.Count({new_v.int64()});
      const int64_t tgt = target_.Count({new_v.int64()});
      d += std::llabs(cur + 1 - tgt) - std::llabs(cur - tgt);
    }
    return d / static_cast<double>(n);
  };
  double penalty = 0;
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (const TupleId tid : mod.tuples) {
          // Out-of-range cells are outside the enforced statistic (and
          // outside the declared read scope): skip before the read.
          if (!InRange(tid)) continue;
          const Value old_v = t->column(col).Get(tid);
          const Value new_v = mod.kind == OpKind::kDeleteValues
                                  ? Value()
                                  : mod.values[cj];
          penalty += delta_for(old_v, new_v);
        }
      }
      break;
    case OpKind::kInsertTuple:
      // The tuple id is assigned at apply time; price the insert as if
      // it may land in range (the incremental statistics settle it).
      penalty += delta_for(Value(), mod.values[static_cast<size_t>(col)]);
      break;
    case OpKind::kDeleteTuple:
      if (InRange(mod.tuples[0])) {
        penalty += delta_for(t->column(col).Get(mod.tuples[0]), Value());
      }
      break;
  }
  return penalty;
}

double ColumnFreqTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  if (db_ == nullptr) return 0.0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0.0;
  const int col = t->ColumnIndex(column_);
  const int64_t n = std::max<int64_t>(1, target_.TotalMass());
  // Early-exit support: each step() call below adds two contributions
  // of at most 1/n each in either direction, so an upper bound on the
  // remaining step count bounds how far the running penalty can still
  // fall. Once it provably stays above the cap, the tail cannot change
  // the veto decision (property_tool.h cap contract).
  const auto step_cap = [&](const Modification& mod) -> int64_t {
    if (mod.table != table_) return 0;
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues: {
        int64_t matching_cols = 0;
        for (const int c : mod.cols) matching_cols += c == col;
        return matching_cols * static_cast<int64_t>(mod.tuples.size());
      }
      case OpKind::kInsertTuple:
      case OpKind::kDeleteTuple:
        return 1;
    }
    return 1;
  };
  int64_t steps_left = 0;
  const bool capped = veto_cap < kNoPenaltyCap;
  if (capped) {
    for (const Modification& mod : mods) steps_left += step_cap(mod);
  }
  // Cumulative overlay over current_: several modifications of one
  // batch may move the same value's count, so each step is priced
  // against the counts the earlier steps left behind. The per-step L1
  // deltas telescope to the batch's total L1 change.
  std::map<int64_t, int64_t> overlay;
  const auto count = [&](int64_t v) {
    const auto it = overlay.find(v);
    return current_.Count({v}) + (it == overlay.end() ? 0 : it->second);
  };
  double penalty = 0;
  const auto step = [&](const Value& old_v, const Value& new_v) {
    if (!old_v.is_null()) {
      const int64_t v = old_v.int64();
      const int64_t cur = count(v);
      const int64_t tgt = target_.Count({v});
      penalty += static_cast<double>(std::llabs(cur - 1 - tgt) -
                                     std::llabs(cur - tgt)) /
                 static_cast<double>(n);
      --overlay[v];
    }
    if (!new_v.is_null() && new_v != old_v) {
      const int64_t v = new_v.int64();
      const int64_t cur = count(v);
      const int64_t tgt = target_.Count({v});
      penalty += static_cast<double>(std::llabs(cur + 1 - tgt) -
                                     std::llabs(cur - tgt)) /
                 static_cast<double>(n);
      ++overlay[v];
    }
  };
  for (const Modification& mod : mods) {
    if (mod.table != table_) continue;
    if (capped) steps_left -= step_cap(mod);
    switch (mod.kind) {
      case OpKind::kDeleteValues:
      case OpKind::kInsertValues:
      case OpKind::kReplaceValues:
        for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
          if (mod.cols[cj] != col) continue;
          for (const TupleId tid : mod.tuples) {
            if (!InRange(tid)) continue;  // see ValidationPenalty
            // Batches touch disjoint tuples, so the stored cell is
            // still this tuple's pre-batch value.
            const Value old_v = t->column(col).Get(tid);
            const Value new_v = mod.kind == OpKind::kDeleteValues
                                    ? Value()
                                    : mod.values[cj];
            step(old_v, new_v);
          }
        }
        break;
      case OpKind::kInsertTuple:
        step(Value(), mod.values[static_cast<size_t>(col)]);
        break;
      case OpKind::kDeleteTuple:
        if (InRange(mod.tuples[0])) {
          step(t->column(col).Get(mod.tuples[0]), Value());
        }
        break;
    }
    if (capped && penalty - 2.0 * static_cast<double>(steps_left) /
                                static_cast<double>(n) >
                      veto_cap) {
      // The remaining steps cannot pull the total back to the cap;
      // `penalty` is already above it, which is all the caller reads.
      return penalty;
    }
  }
  return penalty;
}

Status ColumnFreqTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("freq: Tweak needs Bind");
  Table* t = db_->FindTable(table_);
  const int col = t->ColumnIndex(column_);
  // Build per-value surplus tuple pools once, then move tuples from
  // surplus values to deficit values.
  FrequencyDistribution diff = current_.Difference(target_);
  std::vector<std::pair<int64_t, int64_t>> deficits;   // value, amount
  std::map<int64_t, int64_t> surplus;                  // value -> amount
  for (const auto& [k, c] : diff.counts()) {
    if (c < 0) deficits.emplace_back(k[0], -c);
    if (c > 0) surplus[k[0]] = c;
  }
  if (deficits.empty()) return Status::OK();
  // Collect surplus tuples by scanning once.
  std::map<int64_t, std::vector<TupleId>> pool;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;  // before any cell read
    if (!t->column(col).IsValue(tid)) return;
    const int64_t v = t->column(col).GetInt(tid);
    const auto it = surplus.find(v);
    if (it != surplus.end() &&
        static_cast<int64_t>(pool[v].size()) < it->second) {
      pool[v].push_back(tid);
    }
  });
  auto pool_it = pool.begin();
  int veto_budget = max_attempts_;
  if (ctx->batch_hint() > 1) {
    // Batched pipeline: all victims destined for one deficit value
    // receive the same new value, so up to batch_hint of them fit in a
    // single broadcast ReplaceValues — one validator vote, one columnar
    // write, one listener notification. A vetoed chunk falls back to
    // the one-at-a-time policy below (burn the veto budget, then
    // force), preserving the serial semantics per tuple.
    const int64_t hint = ctx->batch_hint();
    for (const auto& [value, amount] : deficits) {
      int64_t remaining = amount;
      while (remaining > 0) {
        std::vector<TupleId> chunk;
        const int64_t want = std::min<int64_t>(remaining, hint);
        while (static_cast<int64_t>(chunk.size()) < want) {
          while (pool_it != pool.end() && pool_it->second.empty()) {
            ++pool_it;
          }
          if (pool_it == pool.end()) break;
          chunk.push_back(pool_it->second.back());
          pool_it->second.pop_back();
        }
        if (chunk.empty()) return Status::OK();
        remaining -= static_cast<int64_t>(chunk.size());
        Modification mod = Modification::ReplaceValues(
            table_, chunk, {col}, {Value(value)});
        Status st = ctx->TryApply(mod);
        if (st.IsValidationFailed()) {
          for (const TupleId victim : chunk) {
            Modification one = Modification::ReplaceValues(
                table_, {victim}, {col}, {Value(value)});
            Status s1 = ctx->TryApply(one);
            while (s1.IsValidationFailed() && veto_budget-- > 0) {
              s1 = ctx->TryApply(one);
            }
            if (s1.IsValidationFailed()) s1 = ctx->ForceApply(one);
            ASPECT_RETURN_NOT_OK(s1);
          }
          continue;
        }
        ASPECT_RETURN_NOT_OK(st);
      }
    }
    return Status::OK();
  }
  for (const auto& [value, amount] : deficits) {
    for (int64_t i = 0; i < amount; ++i) {
      // Next surplus tuple.
      while (pool_it != pool.end() && pool_it->second.empty()) ++pool_it;
      if (pool_it == pool.end()) return Status::OK();
      const TupleId victim = pool_it->second.back();
      Modification mod = Modification::ReplaceValues(
          table_, {victim}, {col}, {Value(value)});
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) {
        if (veto_budget-- > 0) {
          // Alternatives cannot help a value-level conflict (the
          // penalty depends on values, not tuples), so keep the victim
          // and burn budget until the forced fallback kicks in.
          --i;
          continue;
        }
        st = ctx->ForceApply(mod);
      }
      ASPECT_RETURN_NOT_OK(st);
      pool_it->second.pop_back();
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// NullCountTool
// ---------------------------------------------------------------------

NullCountTool::NullCountTool(const Schema& schema, std::string table,
                             std::string column)
    : name_("nulls:" + table + "." + column),
      table_(std::move(table)),
      column_(std::move(column)) {
  table_index_ = schema.TableIndex(table_);
  if (table_index_ >= 0) {
    col_index_ =
        schema.tables[static_cast<size_t>(table_index_)].ColumnIndex(column_);
  }
}

void NullCountTool::SetRowRange(int64_t lo, int64_t hi) {
  if (lo > hi) std::swap(lo, hi);
  has_range_ = true;
  range_lo_ = lo;
  range_hi_ = hi;
  name_ = StrFormat("%s@%lld-%lld", name_.c_str(),
                    static_cast<long long>(lo), static_cast<long long>(hi));
}

AccessScope NullCountTool::DeclaredScope() const {
  AccessScope scope;
  if (table_index_ < 0 || col_index_ < 0) return scope;  // unknown
  scope.known = true;
  if (has_range_) {
    scope.AddWriteRange(table_index_, col_index_, range_lo_, range_hi_);
  } else {
    scope.AddWrite(table_index_, col_index_);
  }
  // The null count is taken over the live-tuple set.
  scope.AddRead(table_index_, AccessScope::kRowStructure);
  return scope;
}

Status NullCountTool::SetTargetFromDataset(const Database& ground_truth) {
  const Table* t = ground_truth.FindTable(table_);
  if (t == nullptr) return Status::KeyError("nulls: no table " + table_);
  const int col = t->ColumnIndex(column_);
  if (col < 0) return Status::KeyError("nulls: no column " + column_);
  target_ = 0;
  t->ForEachLive([&](TupleId tid) {
    if (InRange(tid)) target_ += t->column(col).IsNull(tid);
  });
  return Status::OK();
}

Status NullCountTool::RepairTarget() {
  if (!bound()) return Status::Invalid("nulls: RepairTarget needs Bind");
  target_ = std::min(target_, db_->FindTable(table_)->NumTuples());
  return Status::OK();
}

Status NullCountTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("nulls: needs Bind");
  if (target_ < 0 || target_ > db_->FindTable(table_)->NumTuples()) {
    return Status::Infeasible("null count outside [0, |T|]");
  }
  return Status::OK();
}

Status NullCountTool::Bind(Database* db) {
  const Table* t = db->FindTable(table_);
  if (t == nullptr || t->ColumnIndex(column_) < 0) {
    return Status::KeyError("nulls: missing " + table_ + "." + column_);
  }
  if (t->column(t->ColumnIndex(column_)).is_foreign_key()) {
    return Status::Invalid("nulls: foreign keys cannot be nulled");
  }
  db_ = db;
  const int col = t->ColumnIndex(column_);
  current_ = 0;
  t->ForEachLive([&](TupleId tid) {
    if (InRange(tid)) current_ += t->column(col).IsNull(tid);
  });
  db_->AddListener(this);
  return Status::OK();
}

void NullCountTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
}

Status NullCountTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  return Status::OK();
}

double NullCountTool::Error() const {
  const int64_t n =
      std::max<int64_t>(1, db_->FindTable(table_)->NumTuples());
  return static_cast<double>(std::llabs(current_ - target_)) /
         static_cast<double>(n);
}

void NullCountTool::OnApplied(const Modification& mod,
                              const std::vector<Value>& old_values,
                              TupleId new_tuple) {
  (void)new_tuple;
  if (db_ == nullptr || mod.table != table_) return;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return;  // table dropped since the bind
  const int col = t->ColumnIndex(column_);
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
          if (!InRange(mod.tuples[tj])) continue;
          current_ -= old_values[tj * mod.cols.size() + cj].is_null();
          if (mod.kind != OpKind::kDeleteValues) {
            current_ += mod.values[cj].is_null();
          }
        }
      }
      break;
    case OpKind::kInsertTuple:
      if (InRange(new_tuple)) {
        current_ += mod.values[static_cast<size_t>(col)].is_null();
      }
      break;
    case OpKind::kDeleteTuple:
      if (InRange(mod.tuples[0])) {
        current_ -= old_values[static_cast<size_t>(col)].is_null();
      }
      break;
  }
}

int64_t NullCountTool::DeltaOf(const Modification& mod) const {
  if (mod.table != table_) return 0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0;  // table dropped: nothing to defend
  const int col = t->ColumnIndex(column_);
  int64_t delta = 0;
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (const TupleId tid : mod.tuples) {
          // Out-of-range cells are outside the statistic and the
          // declared read scope: skip before the read.
          if (!InRange(tid)) continue;
          delta -= t->column(col).IsNull(tid);
          if (mod.kind != OpKind::kDeleteValues) {
            delta += mod.values[cj].is_null();
          }
        }
      }
      break;
    case OpKind::kInsertTuple:
      delta += mod.values[static_cast<size_t>(col)].is_null();
      break;
    case OpKind::kDeleteTuple:
      if (InRange(mod.tuples[0])) {
        delta -= t->column(col).IsNull(mod.tuples[0]);
      }
      break;
  }
  return delta;
}

double NullCountTool::ValidationPenalty(const Modification& mod) const {
  if (db_ == nullptr) return 0.0;
  const int64_t delta = DeltaOf(mod);
  if (delta == 0) return 0.0;
  const int64_t n =
      std::max<int64_t>(1, db_->FindTable(table_)->NumTuples());
  return static_cast<double>(std::llabs(current_ + delta - target_) -
                             std::llabs(current_ - target_)) /
         static_cast<double>(n);
}

double NullCountTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  (void)veto_cap;  // one |sum| evaluation at the end; nothing to cap
  if (db_ == nullptr) return 0.0;
  // Disjoint-tuple batches make the per-mod deltas independent, so the
  // composite is one |sum| evaluation (the per-mod penalty sum is not:
  // |.| is not additive).
  int64_t delta = 0;
  for (const Modification& mod : mods) delta += DeltaOf(mod);
  if (delta == 0) return 0.0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0.0;
  const int64_t n = std::max<int64_t>(1, t->NumTuples());
  return static_cast<double>(std::llabs(current_ + delta - target_) -
                             std::llabs(current_ - target_)) /
         static_cast<double>(n);
}

Status NullCountTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("nulls: Tweak needs Bind");
  Table* t = db_->FindTable(table_);
  const int col = t->ColumnIndex(column_);
  int64_t delta = target_ - current_;
  // Null surplus values or fill surplus nulls with a sampled value.
  Value fill;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;  // before any cell read
    if (fill.is_null() && t->column(col).IsValue(tid)) {
      fill = t->column(col).Get(tid);
    }
  });
  if (fill.is_null()) fill = Value(int64_t{0});
  std::vector<TupleId> candidates;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;
    if (delta > 0 ? t->column(col).IsValue(tid)
                  : t->column(col).IsNull(tid)) {
      candidates.push_back(tid);
    }
  });
  ctx->rng()->Shuffle(&candidates);
  for (const TupleId tid : candidates) {
    if (delta == 0) break;
    Modification mod = Modification::ReplaceValues(
        table_, {tid}, {col}, {delta > 0 ? Value() : fill});
    Status st = ctx->TryApply(mod);
    if (st.IsValidationFailed()) continue;  // plenty of alternatives
    ASPECT_RETURN_NOT_OK(st);
    delta += delta > 0 ? -1 : 1;
  }
  // Force the remainder if validators blocked everything.
  for (const TupleId tid : candidates) {
    if (delta == 0) break;
    if (delta > 0 ? !t->column(col).IsValue(tid)
                  : !t->column(col).IsNull(tid)) {
      continue;
    }
    ASPECT_RETURN_NOT_OK(ctx->ForceApply(Modification::ReplaceValues(
        table_, {tid}, {col}, {delta > 0 ? Value() : fill})));
    delta += delta > 0 ? -1 : 1;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// DomainBoundsTool
// ---------------------------------------------------------------------

DomainBoundsTool::DomainBoundsTool(const Schema& schema, std::string table,
                                   std::string column)
    : name_("bounds:" + table + "." + column),
      table_(std::move(table)),
      column_(std::move(column)) {
  table_index_ = schema.TableIndex(table_);
  if (table_index_ >= 0) {
    col_index_ =
        schema.tables[static_cast<size_t>(table_index_)].ColumnIndex(column_);
  }
}

void DomainBoundsTool::SetRowRange(int64_t lo, int64_t hi) {
  if (lo > hi) std::swap(lo, hi);
  has_range_ = true;
  range_lo_ = lo;
  range_hi_ = hi;
  name_ = StrFormat("%s@%lld-%lld", name_.c_str(),
                    static_cast<long long>(lo), static_cast<long long>(hi));
}

AccessScope DomainBoundsTool::DeclaredScope() const {
  AccessScope scope;
  if (table_index_ < 0 || col_index_ < 0) return scope;  // unknown
  scope.known = true;
  if (has_range_) {
    scope.AddWriteRange(table_index_, col_index_, range_lo_, range_hi_);
  } else {
    scope.AddWrite(table_index_, col_index_);
  }
  // Victim scans and the random bound-pinning picks walk the slot /
  // liveness structure of the table.
  scope.AddRead(table_index_, AccessScope::kRowStructure);
  return scope;
}

Status DomainBoundsTool::SetTargetFromDataset(const Database& ground_truth) {
  const Table* t = ground_truth.FindTable(table_);
  if (t == nullptr) return Status::KeyError("bounds: no table " + table_);
  const int col = t->ColumnIndex(column_);
  if (col < 0) return Status::KeyError("bounds: no column " + column_);
  bool any = false;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;  // before any cell read
    if (!t->column(col).IsValue(tid)) return;
    const int64_t v = t->column(col).GetInt(tid);
    if (!any) {
      target_min_ = target_max_ = v;
      any = true;
    } else {
      target_min_ = std::min(target_min_, v);
      target_max_ = std::max(target_max_, v);
    }
  });
  if (!any) return Status::Invalid("bounds: ground-truth column empty");
  return Status::OK();
}

Status DomainBoundsTool::RepairTarget() {
  if (target_min_ > target_max_) std::swap(target_min_, target_max_);
  return Status::OK();
}

Status DomainBoundsTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("bounds: needs Bind");
  if (target_min_ > target_max_) {
    return Status::Infeasible("bounds: min above max");
  }
  if (db_->FindTable(table_)->NumTuples() < 2 &&
      target_min_ != target_max_) {
    return Status::Infeasible("bounds: need two tuples for two bounds");
  }
  return Status::OK();
}

void DomainBoundsTool::Recount() {
  const Table* t = db_->FindTable(table_);
  const int col = t->ColumnIndex(column_);
  out_of_range_ = at_min_ = at_max_ = 0;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;
    if (!t->column(col).IsValue(tid)) return;
    const int64_t v = t->column(col).GetInt(tid);
    out_of_range_ += v < target_min_ || v > target_max_;
    at_min_ += v == target_min_;
    at_max_ += v == target_max_;
  });
}

Status DomainBoundsTool::Bind(Database* db) {
  const Table* t = db->FindTable(table_);
  if (t == nullptr || t->ColumnIndex(column_) < 0) {
    return Status::KeyError("bounds: missing " + table_ + "." + column_);
  }
  if (t->column(t->ColumnIndex(column_)).type() != ColumnType::kInt64) {
    return Status::Invalid("bounds: column must be int64");
  }
  db_ = db;
  Recount();
  db_->AddListener(this);
  return Status::OK();
}

void DomainBoundsTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
}

Status DomainBoundsTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  return Status::OK();
}

double DomainBoundsTool::ErrorOf(int64_t out_of_range, bool has_min,
                                 bool has_max) const {
  const double n = static_cast<double>(
      std::max<int64_t>(1, db_->FindTable(table_)->NumTuples()));
  return static_cast<double>(out_of_range) / n + (has_min ? 0.0 : 1.0) +
         (has_max ? 0.0 : 1.0);
}

double DomainBoundsTool::Error() const {
  return ErrorOf(out_of_range_, at_min_ > 0, at_max_ > 0);
}

void DomainBoundsTool::OnApplied(const Modification& mod,
                                 const std::vector<Value>& old_values,
                                 TupleId new_tuple) {
  (void)new_tuple;
  if (db_ == nullptr || mod.table != table_) return;
  const Table* table = db_->FindTable(table_);
  if (table == nullptr) return;  // table dropped since the bind
  const int col = table->ColumnIndex(column_);
  auto remove = [&](const Value& v) {
    if (v.is_null()) return;
    const int64_t x = v.int64();
    out_of_range_ -= x < target_min_ || x > target_max_;
    at_min_ -= x == target_min_;
    at_max_ -= x == target_max_;
  };
  auto add = [&](const Value& v) {
    if (v.is_null()) return;
    const int64_t x = v.int64();
    out_of_range_ += x < target_min_ || x > target_max_;
    at_min_ += x == target_min_;
    at_max_ += x == target_max_;
  };
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
          if (!InRange(mod.tuples[tj])) continue;
          remove(old_values[tj * mod.cols.size() + cj]);
          if (mod.kind != OpKind::kDeleteValues) add(mod.values[cj]);
        }
      }
      break;
    case OpKind::kInsertTuple:
      if (InRange(new_tuple)) add(mod.values[static_cast<size_t>(col)]);
      break;
    case OpKind::kDeleteTuple:
      if (InRange(mod.tuples[0])) {
        remove(old_values[static_cast<size_t>(col)]);
      }
      break;
  }
}

void DomainBoundsTool::AccumulateDeltas(const Modification& mod,
                                        const Table* t, int col,
                                        int64_t* oor, int64_t* dmin,
                                        int64_t* dmax) const {
  auto remove = [&](const Value& v) {
    if (v.is_null()) return;
    const int64_t x = v.int64();
    *oor -= x < target_min_ || x > target_max_;
    *dmin -= x == target_min_;
    *dmax -= x == target_max_;
  };
  auto add = [&](const Value& v) {
    if (v.is_null()) return;
    const int64_t x = v.int64();
    *oor += x < target_min_ || x > target_max_;
    *dmin += x == target_min_;
    *dmax += x == target_max_;
  };
  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues:
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        if (mod.cols[cj] != col) continue;
        for (const TupleId tid : mod.tuples) {
          // Out-of-range cells are outside the statistic and the
          // declared read scope: skip before the read.
          if (!InRange(tid)) continue;
          remove(t->column(col).Get(tid));
          if (mod.kind != OpKind::kDeleteValues) add(mod.values[cj]);
        }
      }
      break;
    case OpKind::kInsertTuple:
      add(mod.values[static_cast<size_t>(col)]);
      break;
    case OpKind::kDeleteTuple:
      if (InRange(mod.tuples[0])) {
        remove(t->column(col).Get(mod.tuples[0]));
      }
      break;
  }
}

double DomainBoundsTool::ValidationPenalty(const Modification& mod) const {
  if (db_ == nullptr || mod.table != table_) return 0.0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0.0;  // table dropped: nothing to defend
  const int col = t->ColumnIndex(column_);
  int64_t oor = 0, dmin = 0, dmax = 0;
  AccumulateDeltas(mod, t, col, &oor, &dmin, &dmax);
  if (oor == 0 && dmin == 0 && dmax == 0) return 0.0;
  return ErrorOf(out_of_range_ + oor, at_min_ + dmin > 0,
                 at_max_ + dmax > 0) -
         Error();
}

double DomainBoundsTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  (void)veto_cap;  // composite priced once at the end; nothing to cap
  if (db_ == nullptr) return 0.0;
  const Table* t = db_->FindTable(table_);
  if (t == nullptr) return 0.0;
  const int col = t->ColumnIndex(column_);
  // The at-bound error terms are thresholded, not additive: sum every
  // mod's deltas first (independent on disjoint tuples), then price the
  // composite once.
  int64_t oor = 0, dmin = 0, dmax = 0;
  for (const Modification& mod : mods) {
    if (mod.table != table_) continue;
    AccumulateDeltas(mod, t, col, &oor, &dmin, &dmax);
  }
  if (oor == 0 && dmin == 0 && dmax == 0) return 0.0;
  return ErrorOf(out_of_range_ + oor, at_min_ + dmin > 0,
                 at_max_ + dmax > 0) -
         Error();
}

Status DomainBoundsTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("bounds: Tweak needs Bind");
  Table* t = db_->FindTable(table_);
  const int col = t->ColumnIndex(column_);
  // Clamp every out-of-range value.
  std::vector<TupleId> victims;
  t->ForEachLive([&](TupleId tid) {
    if (!InRange(tid)) return;  // before any cell read
    if (!t->column(col).IsValue(tid)) return;
    const int64_t v = t->column(col).GetInt(tid);
    if (v < target_min_ || v > target_max_) victims.push_back(tid);
  });
  for (const TupleId tid : victims) {
    const int64_t v = t->column(col).GetInt(tid);
    Modification mod = Modification::ReplaceValues(
        table_, {tid}, {col},
        {Value(v < target_min_ ? target_min_ : target_max_)});
    Status st = ctx->TryApply(mod);
    if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
    ASPECT_RETURN_NOT_OK(st);
  }
  // Pin one tuple to each missing bound.
  for (const auto& [needed, value] :
       {std::pair<bool, int64_t>{at_min_ == 0, target_min_},
        std::pair<bool, int64_t>{at_max_ == 0, target_max_}}) {
    if (!needed || t->NumTuples() == 0) continue;
    // Restrict the random pick to the declared row interval so the pin
    // never reads (or writes) a cell outside the certified range.
    const int64_t pick_lo = has_range_ ? std::max<int64_t>(0, range_lo_) : 0;
    const int64_t pick_hi = has_range_
                                ? std::min<int64_t>(range_hi_,
                                                    t->NumSlots() - 1)
                                : t->NumSlots() - 1;
    if (pick_hi < pick_lo) continue;
    for (int tries = 0; tries < 64; ++tries) {
      const TupleId tid = ctx->rng()->UniformInt(pick_lo, pick_hi);
      if (!t->IsLive(tid) || !t->column(col).IsValue(tid)) continue;
      const int64_t v = t->column(col).GetInt(tid);
      if (v == target_min_ || v == target_max_) continue;  // keep bounds
      Modification mod = Modification::ReplaceValues(table_, {tid}, {col},
                                                     {Value(value)});
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
      ASPECT_RETURN_NOT_OK(st);
      break;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// TupleCountTool
// ---------------------------------------------------------------------

TupleCountTool::TupleCountTool(const Schema& schema) : schema_(schema) {}

AccessScope TupleCountTool::DeclaredScope() const {
  // The tool only inserts and deletes whole tuples; it never rewrites
  // another tool's cell values. Declaring row-structure writes instead
  // of whole-table writes means cell-scoped tools stay parallel-
  // eligible after this tool is enforced: its votes depend only on
  // live-tuple counts (stats_reads = row structure), which cell writes
  // cannot disturb.
  AccessScope scope;
  scope.known = true;
  for (size_t t = 0; t < schema_.tables.size(); ++t) {
    const int ti = static_cast<int>(t);
    scope.AddWrite(ti, AccessScope::kRowStructure);
    // Growing clones a random live template row, which reads every
    // column of the table — but only inside Tweak; Error() and
    // ValidationPenalty() never look at cell values.
    scope.AddTweakOnlyRead(ti, AccessScope::kWholeTable);
  }
  // Shrinking deletes only unreferenced tuples: the RefCounter's
  // victim test depends on every inbound foreign-key column.
  for (size_t t = 0; t < schema_.tables.size(); ++t) {
    const TableSpec& ts = schema_.tables[t];
    for (size_t c = 0; c < ts.columns.size(); ++c) {
      if (!ts.columns[c].ref_table.empty()) {
        scope.AddTweakOnlyRead(static_cast<int>(t), static_cast<int>(c));
      }
    }
  }
  return scope;
}

Status TupleCountTool::SetTargetFromDataset(const Database& ground_truth) {
  targets_.clear();
  for (int t = 0; t < ground_truth.num_tables(); ++t) {
    targets_.push_back(ground_truth.table(t).NumTuples());
  }
  return Status::OK();
}

Status TupleCountTool::SetTargetSizes(std::vector<int64_t> sizes) {
  if (sizes.size() != schema_.tables.size()) {
    return Status::Invalid("tuple-count: wrong number of sizes");
  }
  targets_ = std::move(sizes);
  return Status::OK();
}

Status TupleCountTool::RepairTarget() {
  if (!bound()) return Status::Invalid("tuple-count: needs Bind");
  for (int64_t& s : targets_) s = std::max<int64_t>(1, s);
  return Status::OK();
}

Status TupleCountTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("tuple-count: needs Bind");
  if (targets_.size() != schema_.tables.size()) {
    return Status::Infeasible("tuple-count: no targets");
  }
  for (const int64_t s : targets_) {
    if (s < 1) return Status::Infeasible("tuple-count: size below 1");
  }
  return Status::OK();
}

std::unique_ptr<PropertyTool> TupleCountTool::Clone() const {
  if (bound()) return nullptr;
  auto copy = std::make_unique<TupleCountTool>(schema_);
  copy->targets_ = targets_;
  return copy;
}

Status TupleCountTool::Bind(Database* db) {
  db_ = db;
  refcount_ = std::make_unique<RefCounter>(db_);
  db_->AddListener(this);
  return Status::OK();
}

void TupleCountTool::Unbind() {
  refcount_.reset();
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
}

double TupleCountTool::Error() const {
  if (targets_.empty()) return 0.0;
  double sum = 0;
  for (int t = 0; t < db_->num_tables(); ++t) {
    const double tgt =
        std::max<int64_t>(1, targets_[static_cast<size_t>(t)]);
    sum += std::fabs(static_cast<double>(db_->table(t).NumTuples()) - tgt) /
           tgt;
  }
  return sum / static_cast<double>(db_->num_tables());
}

void TupleCountTool::OnApplied(const Modification& mod,
                               const std::vector<Value>& old_values,
                               TupleId new_tuple) {
  // Sizes are read live from the database; nothing cached here.
  (void)mod;
  (void)old_values;
  (void)new_tuple;
}

double TupleCountTool::ValidationPenalty(const Modification& mod) const {
  if (db_ == nullptr || targets_.empty()) return 0.0;
  if (mod.kind != OpKind::kInsertTuple && mod.kind != OpKind::kDeleteTuple) {
    return 0.0;
  }
  const int t = db_->schema().TableIndex(mod.table);
  if (t < 0) return 0.0;
  const double tgt = std::max<int64_t>(1, targets_[static_cast<size_t>(t)]);
  const double cur = static_cast<double>(db_->table(t).NumTuples());
  const double next = cur + (mod.kind == OpKind::kInsertTuple ? 1 : -1);
  return (std::fabs(next - tgt) - std::fabs(cur - tgt)) / tgt /
         static_cast<double>(db_->num_tables());
}

Status TupleCountTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("tuple-count: Tweak needs Bind");
  for (int ti = 0; ti < db_->num_tables(); ++ti) {
    Table& t = db_->table(ti);
    const int64_t want = targets_[static_cast<size_t>(ti)];
    // Grow: clone random template tuples.
    while (t.NumTuples() < want) {
      TupleId tmpl = kInvalidTuple;
      for (int tries = 0; tries < 64 && tmpl == kInvalidTuple; ++tries) {
        const TupleId cand = ctx->rng()->UniformInt(0, t.NumSlots() - 1);
        if (t.IsLive(cand)) tmpl = cand;
      }
      if (tmpl == kInvalidTuple) break;
      Modification mod = Modification::InsertTuple(t.name(), t.GetRow(tmpl));
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
      ASPECT_RETURN_NOT_OK(st);
    }
    // Shrink: delete unreferenced tuples.
    int64_t scan = t.NumSlots();
    while (t.NumTuples() > want && scan-- > 0) {
      const TupleId cand = ctx->rng()->UniformInt(0, t.NumSlots() - 1);
      if (!t.IsLive(cand) || !refcount_->Unreferenced(ti, cand)) continue;
      Modification mod = Modification::DeleteTuple(t.name(), cand);
      Status st = ctx->TryApply(mod);
      if (st.IsValidationFailed()) st = ctx->ForceApply(mod);
      ASPECT_RETURN_NOT_OK(st);
    }
  }
  return Status::OK();
}

}  // namespace aspect
