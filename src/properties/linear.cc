#include "properties/linear.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/logging.h"
#include "common/string_util.h"

namespace aspect {
namespace {

/// Sliding-window minimum of sizes[i..j] inclusive.
int64_t WindowMin(const std::vector<int64_t>& sizes, int i, int j) {
  int64_t m = sizes[static_cast<size_t>(i)];
  for (int n = i + 1; n <= j; ++n) {
    m = std::min(m, sizes[static_cast<size_t>(n)]);
  }
  return m;
}

}  // namespace

LinearPropertyTool::LinearPropertyTool(const Schema& schema)
    : schema_(schema) {
  ReferenceGraph graph(schema_);
  chains_ = graph.MaximalChains();
  for (const ReferenceChain& c : chains_) {
    stats_.emplace_back(c);
    targets_.emplace_back(c.length());
  }
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    const ReferenceChain& c = chains_[ci];
    for (size_t l = 1; l < c.tables.size(); ++l) {
      edges_[{c.tables[l], c.fk_cols[l - 1]}].emplace_back(
          static_cast<int>(ci), static_cast<int>(l));
    }
  }
}

Status LinearPropertyTool::SetTargetFromDataset(
    const Database& ground_truth) {
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    targets_[ci] = ComputeJoinMatrix(ground_truth, chains_[ci]);
  }
  return Status::OK();
}

Status LinearPropertyTool::SetTargetMatrices(
    std::vector<JoinMatrix> targets) {
  if (targets.size() != chains_.size()) {
    return Status::Invalid(
        StrFormat("expected %zu matrices, got %zu", chains_.size(),
                  targets.size()));
  }
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    if (targets[ci].k() != chains_[ci].length()) {
      return Status::Invalid(StrFormat("matrix %zu has wrong size", ci));
    }
  }
  targets_ = std::move(targets);
  return Status::OK();
}

Status LinearPropertyTool::CheckMatrixFeasible(
    const JoinMatrix& m, const std::vector<int64_t>& sizes) {
  const int k = m.k();
  for (int j = 1; j < k; ++j) {
    for (int i = 0; i < j; ++i) {
      if (m.at(j, i) < 1) {
        return Status::Infeasible(
            StrFormat("entry (%d,%d) below 1", j, i));
      }
      if (m.at(j, i) > WindowMin(sizes, i, j)) {
        return Status::Infeasible(
            StrFormat("L1 violated at (%d,%d)", j, i));  // h <= min |Tn|
      }
    }
  }
  for (int i = 0; i < k - 1; ++i) {
    for (int j = i + 2; j < k; ++j) {
      if (m.at(j, i) > m.at(j - 1, i)) {
        return Status::Infeasible(
            StrFormat("L2 violated at (%d,%d)", j, i));
      }
    }
  }
  for (int j = 2; j < k; ++j) {
    for (int i = 1; i < j; ++i) {
      if (m.at(j, i) < m.at(j, i - 1)) {
        return Status::Infeasible(
            StrFormat("L3 violated at (%d,%d)", j, i));
      }
    }
  }
  for (int j = 1; j + 1 < k; ++j) {
    for (int i = 0; i + 1 < j; ++i) {
      if (m.at(j, i) - m.at(j + 1, i) >
          m.at(j, i + 1) - m.at(j + 1, i + 1)) {
        return Status::Infeasible(
            StrFormat("L4 violated at (%d,%d)", j, i));
      }
    }
  }
  return Status::OK();
}

void LinearPropertyTool::RepairMatrix(JoinMatrix* m,
                                      const std::vector<int64_t>& sizes) {
  const int k = m->k();
  for (int round = 0; round < 200; ++round) {
    bool changed = false;
    auto clamp = [&](int j, int i, int64_t lo, int64_t hi) {
      const int64_t v = m->at(j, i);
      const int64_t c = std::clamp(v, lo, hi);
      if (c != v) {
        m->set(j, i, c);
        changed = true;
      }
    };
    // L1 and >= 1.
    for (int j = 1; j < k; ++j) {
      for (int i = 0; i < j; ++i) {
        clamp(j, i, 1, std::max<int64_t>(1, WindowMin(sizes, i, j)));
      }
    }
    // L2: columns non-increasing in j.
    for (int i = 0; i < k - 1; ++i) {
      for (int j = i + 2; j < k; ++j) {
        clamp(j, i, 1, m->at(j - 1, i));
      }
    }
    // L3: rows non-decreasing in i.
    for (int j = 2; j < k; ++j) {
      for (int i = 1; i < j; ++i) {
        if (m->at(j, i) < m->at(j, i - 1)) {
          m->set(j, i, m->at(j, i - 1));
          changed = true;
        }
      }
    }
    // L4: clamp h[j+1][i+1] <= h[j][i+1] - h[j][i] + h[j+1][i].
    for (int j = 1; j + 1 < k; ++j) {
      for (int i = 0; i + 1 < j; ++i) {
        const int64_t bound =
            m->at(j, i + 1) - m->at(j, i) + m->at(j + 1, i);
        if (m->at(j + 1, i + 1) > bound) {
          m->set(j + 1, i + 1, std::max<int64_t>(1, bound));
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  if (!CheckMatrixFeasible(*m, sizes).ok()) {
    // Guaranteed-feasible fallback: the window-minimum matrix (the
    // fully connected shape), which satisfies L1-L4 by construction.
    for (int j = 1; j < k; ++j) {
      for (int i = 0; i < j; ++i) {
        m->set(j, i, std::max<int64_t>(1, WindowMin(sizes, i, j)));
      }
    }
  }
}

Status LinearPropertyTool::RepairTarget() {
  if (!bound()) return Status::Invalid("linear: RepairTarget needs Bind");
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    std::vector<int64_t> sizes;
    for (const int t : chains_[ci].tables) {
      sizes.push_back(db_->table(t).NumTuples());
    }
    RepairMatrix(&targets_[ci], sizes);
  }
  return Status::OK();
}

Status LinearPropertyTool::CheckTargetFeasible() const {
  if (!bound()) return Status::Invalid("linear: needs Bind");
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    std::vector<int64_t> sizes;
    for (const int t : chains_[ci].tables) {
      sizes.push_back(db_->table(t).NumTuples());
    }
    Status st = CheckMatrixFeasible(targets_[ci], sizes);
    if (!st.ok()) {
      return Status::Infeasible(
          StrFormat("chain %zu: %s", ci, st.message().c_str()));
    }
  }
  return Status::OK();
}

Status LinearPropertyTool::Bind(Database* db) {
  if (db->schema().TableIndex(schema_.tables[0].name) < 0) {
    return Status::Invalid("linear: schema mismatch");
  }
  db_ = db;
  for (ChainStats& s : stats_) s.Build(*db_);
  db_->AddListener(this);
  return Status::OK();
}

void LinearPropertyTool::Unbind() {
  if (db_ != nullptr) {
    db_->RemoveListener(this);
    db_ = nullptr;
  }
}

Status LinearPropertyTool::Rebase(Database* db) {
  if (db_ == nullptr) return Bind(db);
  if (db == db_) return Status::OK();
  db_->RemoveListener(this);
  db_ = db;
  db_->AddListener(this);
  return Status::OK();
}

double LinearPropertyTool::Error() const {
  if (chains_.empty()) return 0.0;
  double sum = 0;
  for (size_t ci = 0; ci < chains_.size(); ++ci) {
    sum += stats_[ci].matrix().ErrorAgainst(targets_[ci]);
  }
  return sum / static_cast<double>(chains_.size());
}

std::vector<LinearPropertyTool::EdgeChange>
LinearPropertyTool::CollectEdgeChanges(const Modification& mod,
                                       const std::vector<Value>* old_values,
                                       TupleId new_tuple) const {
  std::vector<EdgeChange> out;
  const int table = db_->schema().TableIndex(mod.table);
  if (table < 0) return out;

  auto parent_of = [](const Value& v) {
    return v.is_null() ? kInvalidTuple : v.int64();
  };

  switch (mod.kind) {
    case OpKind::kDeleteValues:
    case OpKind::kInsertValues:
    case OpKind::kReplaceValues: {
      for (size_t cj = 0; cj < mod.cols.size(); ++cj) {
        const auto it = edges_.find({table, mod.cols[cj]});
        if (it == edges_.end()) continue;
        for (size_t tj = 0; tj < mod.tuples.size(); ++tj) {
          const TupleId t = mod.tuples[tj];
          Value old_v;
          if (old_values != nullptr) {
            old_v = (*old_values)[tj * mod.cols.size() + cj];
          } else {
            old_v = db_->table(table).column(mod.cols[cj]).Get(t);
          }
          Value new_v;
          if (mod.kind != OpKind::kDeleteValues) new_v = mod.values[cj];
          for (const auto& [chain, level] : it->second) {
            EdgeChange c;
            c.chain = chain;
            c.level = level;
            c.child = t;
            c.old_parent = parent_of(old_v);
            c.new_parent = parent_of(new_v);
            out.push_back(c);
          }
        }
      }
      break;
    }
    case OpKind::kInsertTuple: {
      const TupleId t = new_tuple != kInvalidTuple
                            ? new_tuple
                            : db_->table(table).NumSlots();
      for (size_t col = 0; col < mod.values.size(); ++col) {
        const auto it = edges_.find({table, static_cast<int>(col)});
        if (it == edges_.end()) continue;
        for (const auto& [chain, level] : it->second) {
          EdgeChange c;
          c.chain = chain;
          c.level = level;
          c.child = t;
          c.new_parent = parent_of(mod.values[col]);
          out.push_back(c);
        }
      }
      break;
    }
    case OpKind::kDeleteTuple: {
      const TupleId t = mod.tuples[0];
      const Table& tbl = db_->table(table);
      for (int col = 0; col < tbl.num_columns(); ++col) {
        const auto it = edges_.find({table, col});
        if (it == edges_.end()) continue;
        Value old_v;
        if (old_values != nullptr && !old_values->empty()) {
          old_v = (*old_values)[static_cast<size_t>(col)];
        } else {
          old_v = tbl.column(col).Get(t);
        }
        for (const auto& [chain, level] : it->second) {
          EdgeChange c;
          c.chain = chain;
          c.level = level;
          c.child = t;
          c.old_parent = parent_of(old_v);
          out.push_back(c);
        }
      }
      break;
    }
  }
  return out;
}

void LinearPropertyTool::ApplyEdgeChanges(
    std::span<const EdgeChange> changes) {
  for (const EdgeChange& c : changes) {
    ChainStats& s = stats_[static_cast<size_t>(c.chain)];
    if (c.old_parent != kInvalidTuple) s.Detach(c.level, c.child);
    if (c.new_parent != kInvalidTuple) {
      s.EnsureSlotCount(c.level, c.child + 1);
      s.EnsureSlotCount(c.level - 1, c.new_parent + 1);
      s.Attach(c.level, c.child, c.new_parent);
    }
  }
}

void LinearPropertyTool::RevertEdgeChanges(
    std::span<const EdgeChange> changes) {
  for (auto it = changes.rbegin(); it != changes.rend(); ++it) {
    ChainStats& s = stats_[static_cast<size_t>(it->chain)];
    if (it->new_parent != kInvalidTuple) s.Detach(it->level, it->child);
    if (it->old_parent != kInvalidTuple) {
      s.Attach(it->level, it->child, it->old_parent);
    }
  }
}

void LinearPropertyTool::OnApplied(const Modification& mod,
                                   const std::vector<Value>& old_values,
                                   TupleId new_tuple) {
  if (db_ == nullptr) return;
  const std::vector<EdgeChange> changes =
      CollectEdgeChanges(mod, &old_values, new_tuple);
  ApplyEdgeChanges(changes);
}

double LinearPropertyTool::ValidationPenalty(const Modification& mod) const {
  if (db_ == nullptr) return 0.0;
  const std::vector<EdgeChange> changes =
      CollectEdgeChanges(mod, nullptr, kInvalidTuple);
  if (changes.empty()) return 0.0;
  std::vector<int> affected;
  for (const EdgeChange& c : changes) affected.push_back(c.chain);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  double before = 0;
  for (const int ci : affected) {
    before += stats_[static_cast<size_t>(ci)].matrix().ErrorAgainst(
        targets_[static_cast<size_t>(ci)]);
  }
  auto* self = const_cast<LinearPropertyTool*>(this);
  self->ApplyEdgeChanges(changes);
  double after = 0;
  for (const int ci : affected) {
    after += stats_[static_cast<size_t>(ci)].matrix().ErrorAgainst(
        targets_[static_cast<size_t>(ci)]);
  }
  self->RevertEdgeChanges(changes);
  return (after - before) / static_cast<double>(chains_.size());
}

double LinearPropertyTool::ValidationPenaltyBatch(
    std::span<const Modification> mods, double veto_cap) const {
  if (db_ == nullptr) return 0.0;
  std::vector<EdgeChange> changes;
  // ApplyBatch appends inserts in order, so the k-th insert into a
  // table lands at NumSlots() + k. Each insert must be simulated at
  // its own predicted id: letting CollectEdgeChanges default them all
  // to NumSlots() would attach several children at one slot, and the
  // second Attach corrupts ChainStats.
  std::map<int, TupleId> inserts_seen;
  for (const Modification& mod : mods) {
    TupleId predicted = kInvalidTuple;
    if (mod.kind == OpKind::kInsertTuple) {
      const int table = db_->schema().TableIndex(mod.table);
      if (table >= 0) {
        TupleId& k = inserts_seen[table];
        predicted = db_->table(table).NumSlots() + k;
        ++k;
      }
    }
    std::vector<EdgeChange> one = CollectEdgeChanges(mod, nullptr, predicted);
    changes.insert(changes.end(), one.begin(), one.end());
  }
  if (changes.empty()) return 0.0;
  std::vector<int> affected;
  for (const EdgeChange& c : changes) affected.push_back(c.chain);
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  double before = 0;
  for (const int ci : affected) {
    before += stats_[static_cast<size_t>(ci)].matrix().ErrorAgainst(
        targets_[static_cast<size_t>(ci)]);
  }
  auto* self = const_cast<LinearPropertyTool*>(this);
  const std::span<const EdgeChange> all(changes);
  if (veto_cap != kNoPenaltyCap && changes.size() > 1) {
    // Per-chain bound on how much ONE edge change can move that
    // chain's ErrorAgainst: every matrix entry moves by at most 2
    // (only the single ancestor above the re-parented child at a
    // level can flip its reach to a deeper level, once for the detach
    // and once for the attach), so the mean over entries moves by at
    // most (sum over entries of 2/max(t,1)) / n_entries.
    std::map<int, double> chain_move;
    for (const int ci : affected) {
      const JoinMatrix& t = targets_[static_cast<size_t>(ci)];
      double sum = 0;
      int n = 0;
      for (int j = 1; j < t.k(); ++j) {
        for (int i = 0; i < j; ++i) {
          sum += 2.0 / std::max(static_cast<double>(t.at(j, i)), 1.0);
          ++n;
        }
      }
      chain_move[ci] = n == 0 ? 0.0 : sum / static_cast<double>(n);
    }
    // suffix[i] bounds the error movement of changes[i..).
    std::vector<double> suffix(changes.size() + 1, 0.0);
    for (size_t i = changes.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + chain_move[changes[i].chain];
    }
    const double exit_cap =
        veto_cap + kPenaltyCapSlack * (1.0 + std::fabs(veto_cap));
    constexpr size_t kChunk = 32;
    size_t applied = 0;
    while (applied + kChunk < changes.size()) {
      self->ApplyEdgeChanges(all.subspan(applied, kChunk));
      applied += kChunk;
      double current = 0;
      for (const int ci : affected) {
        current += stats_[static_cast<size_t>(ci)].matrix().ErrorAgainst(
            targets_[static_cast<size_t>(ci)]);
      }
      const double floor_penalty = (current - suffix[applied] - before) /
                                   static_cast<double>(chains_.size());
      if (floor_penalty > exit_cap) {
        self->RevertEdgeChanges(all.first(applied));
        return floor_penalty;
      }
    }
    // Finish the tail: the statistics now match a single full apply,
    // so the measurement below is the uncapped result, bit for bit.
    self->ApplyEdgeChanges(all.subspan(applied));
  } else {
    self->ApplyEdgeChanges(all);
  }
  double after = 0;
  for (const int ci : affected) {
    after += stats_[static_cast<size_t>(ci)].matrix().ErrorAgainst(
        targets_[static_cast<size_t>(ci)]);
  }
  self->RevertEdgeChanges(all);
  return (after - before) / static_cast<double>(chains_.size());
}

AccessScope LinearPropertyTool::DeclaredScope() const {
  AccessScope scope;
  scope.known = true;
  for (const ReferenceChain& c : chains_) {
    // Reach counts depend on which root tuples are live, and row
    // inserts/deletes record whole-table writes, so a whole-table read
    // on the root is what makes them conflict here.
    scope.AddRead(c.tables[0], AccessScope::kWholeTable);
    for (size_t l = 1; l < c.tables.size(); ++l) {
      scope.AddWrite(c.tables[l], c.fk_cols[l - 1]);
      // Victim scans walk each level's slot/liveness structure, and
      // the join matrices count per live tuple, so row membership of
      // every level is part of the read contract.
      scope.AddRead(c.tables[l], AccessScope::kRowStructure);
    }
  }
  return scope;
}

std::vector<LinearPropertyTool::ChainDelta>
LinearPropertyTool::EvaluateEdgeMove(int table, int col, TupleId child,
                                     TupleId new_parent) const {
  std::vector<ChainDelta> out;
  const auto it = edges_.find({table, col});
  if (it == edges_.end()) return out;
  auto* self = const_cast<LinearPropertyTool*>(this);
  for (const auto& [chain, level] : it->second) {
    ChainStats& s = self->stats_[static_cast<size_t>(chain)];
    const JoinMatrix before = s.matrix();
    const TupleId old_parent = s.Parent(level, child);
    if (old_parent == new_parent) continue;
    if (old_parent != kInvalidTuple) s.Detach(level, child);
    s.EnsureSlotCount(level - 1, new_parent + 1);
    s.Attach(level, child, new_parent);
    const JoinMatrix after = s.matrix();
    // Revert.
    s.Detach(level, child);
    if (old_parent != kInvalidTuple) s.Attach(level, child, old_parent);
    ChainDelta d;
    d.chain = chain;
    const int k = before.k();
    for (int j = 1; j < k; ++j) {
      for (int i = 0; i < j; ++i) {
        const int64_t delta = after.at(j, i) - before.at(j, i);
        if (delta != 0) d.entries.emplace_back(j, i, delta);
      }
    }
    if (!d.entries.empty()) out.push_back(std::move(d));
  }
  return out;
}

std::vector<LinearPropertyTool::ChainDelta>
LinearPropertyTool::EvaluateGroupMove(int table, int col,
                                      const std::vector<TupleId>& children,
                                      TupleId new_parent) const {
  std::vector<ChainDelta> out;
  const auto it = edges_.find({table, col});
  if (it == edges_.end()) return out;
  auto* self = const_cast<LinearPropertyTool*>(this);
  for (const auto& [chain, level] : it->second) {
    ChainStats& s = self->stats_[static_cast<size_t>(chain)];
    const JoinMatrix before = s.matrix();
    // Apply every move, remembering old parents for the revert; moves
    // that are no-ops on this chain are skipped.
    std::vector<std::pair<TupleId, TupleId>> applied;  // (child, old)
    for (const TupleId child : children) {
      const TupleId old_parent = s.Parent(level, child);
      if (old_parent == new_parent) continue;
      if (old_parent != kInvalidTuple) s.Detach(level, child);
      s.EnsureSlotCount(level - 1, new_parent + 1);
      s.Attach(level, child, new_parent);
      applied.emplace_back(child, old_parent);
    }
    const JoinMatrix after = s.matrix();
    for (auto rit = applied.rbegin(); rit != applied.rend(); ++rit) {
      s.Detach(level, rit->first);
      if (rit->second != kInvalidTuple) {
        s.Attach(level, rit->first, rit->second);
      }
    }
    ChainDelta d;
    d.chain = chain;
    const int k = before.k();
    for (int j = 1; j < k; ++j) {
      for (int i = 0; i < j; ++i) {
        const int64_t delta = after.at(j, i) - before.at(j, i);
        if (delta != 0) d.entries.emplace_back(j, i, delta);
      }
    }
    if (!d.entries.empty()) out.push_back(std::move(d));
  }
  return out;
}

bool LinearPropertyTool::MoveDamagesProtected(
    const std::vector<ChainDelta>& deltas, int current, int protected_upto,
    int row_limit, int entry_limit) const {
  for (const ChainDelta& d : deltas) {
    if (d.chain == current) {
      for (const auto& [j, i, delta] : d.entries) {
        if (j < row_limit || (j == row_limit && i < entry_limit)) {
          return true;
        }
      }
    } else if (d.chain < protected_upto) {
      if (!d.entries.empty()) return true;
    }
  }
  return false;
}

Status LinearPropertyTool::ProposeMove(TweakContext* ctx, int ci, int level,
                                       TupleId child, TupleId new_parent,
                                       int* veto_budget) {
  const ReferenceChain& chain = chains_[static_cast<size_t>(ci)];
  const int table = chain.tables[static_cast<size_t>(level)];
  const int col = chain.fk_cols[static_cast<size_t>(level - 1)];
  const Modification mod = Modification::ReplaceValues(
      db_->table(table).name(), {child}, {col},
      {Value(static_cast<int64_t>(new_parent))});
  Status st = ctx->TryApply(mod);
  if (st.IsValidationFailed()) {
    if (*veto_budget > 0) {
      --*veto_budget;
      return st;  // caller tries an alternative
    }
    return ctx->ForceApply(mod);
  }
  return st;
}

template <typename Pred>
TupleId LinearPropertyTool::FindTuple(TweakContext* ctx, int ci, int level,
                                      Pred pred) const {
  const Table& t = db_->table(
      chains_[static_cast<size_t>(ci)].tables[static_cast<size_t>(level)]);
  const int64_t slots = t.NumSlots();
  if (slots == 0) return kInvalidTuple;
  for (int tries = 0; tries < 128; ++tries) {
    const TupleId cand = ctx->rng()->UniformInt(0, slots - 1);
    if (t.IsLive(cand) && pred(cand)) return cand;
  }
  const TupleId start = ctx->rng()->UniformInt(0, slots - 1);
  for (int64_t off = 0; off < slots; ++off) {
    const TupleId cand = (start + off) % slots;
    if (t.IsLive(cand) && pred(cand)) return cand;
  }
  return kInvalidTuple;
}

bool LinearPropertyTool::ReduceOnce(TweakContext* ctx, int ci, int J, int i,
                                    int protected_upto) {
  ChainStats& s = stats_[static_cast<size_t>(ci)];
  const ReferenceChain& chain = chains_[static_cast<size_t>(ci)];
  // Pick a level-i tuple x reaching J whose removal from S_{J,i} does
  // not disturb earlier entries: its parent must keep reach to J
  // through another child (Lemma 3's R_y representatives stay put).
  const TupleId x = FindTuple(ctx, ci, i, [&](TupleId cand) {
    if (!s.Reaches(i, cand, J)) return false;
    if (i == 0) return true;
    const TupleId p = s.Parent(i, cand);
    return p != kInvalidTuple && s.Cnt(i - 1, p, J) >= 2;
  });
  if (x == kInvalidTuple) return false;

  // Collect x's descendants at level J (Leaf Tuple Plucking).
  std::vector<TupleId> q_set;
  {
    std::vector<std::pair<int, TupleId>> stack = {{i, x}};
    while (!stack.empty()) {
      const auto [lev, t] = stack.back();
      stack.pop_back();
      if (lev == J) {
        q_set.push_back(t);
        continue;
      }
      for (const TupleId c : s.Children(lev, t)) {
        if (s.Reaches(lev + 1, c, J)) stack.emplace_back(lev + 1, c);
      }
    }
  }
  if (q_set.empty()) return false;

  // Re-attach every q elsewhere (Leaf Tuple Attaching). Two candidate
  // kinds, both outside x's subtree: the parent of an existing anchor
  // q' (guaranteed not to flip any reach on), or a random level J-1
  // tuple - the latter lets one move net-compensate flips in chains
  // that share this edge (flip r_old off, flip dest on). The exact
  // per-move evaluation decides which candidates are safe.
  const int table = chain.tables[static_cast<size_t>(J)];
  const int col = chain.fk_cols[static_cast<size_t>(J - 1)];
  int veto_budget = max_attempts_;

  auto find_dest = [&](int attempt, TupleId q) {
    TupleId dest = kInvalidTuple;
    if (attempt % 2 == 0) {
      const TupleId anchor = FindTuple(ctx, ci, J, [&](TupleId cand) {
        if (cand == q) return false;
        const TupleId anc = s.AncestorAt(J, cand, i);
        return anc != kInvalidTuple && anc != x;
      });
      if (anchor != kInvalidTuple) dest = s.Parent(J, anchor);
    } else {
      dest = FindTuple(ctx, ci, J - 1, [&](TupleId cand) {
        const TupleId anc = s.AncestorAt(J - 1, cand, i);
        return anc != kInvalidTuple && anc != x;
      });
    }
    return dest;
  };
  // The move must not damage protected entries nor push the entry being
  // reduced upward.
  auto move_ok = [&](const std::vector<ChainDelta>& deltas) {
    if (MoveDamagesProtected(deltas, ci, protected_upto, J, i)) {
      return false;
    }
    for (const ChainDelta& d : deltas) {
      if (d.chain != ci) continue;
      for (const auto& [dj, di, delta] : d.entries) {
        if (dj == J && di == i && delta > 0) return false;
      }
    }
    return true;
  };

  if (ctx->batch_hint() > 1) {
    // Grouped Leaf Tuple Attaching: pluck a run of leaves onto one
    // destination with a single multi-tuple modification (columnar
    // apply, one validator vote, one notification). The combined move
    // is re-simulated exactly at every extension, so the group obeys
    // the same damage rules as its serial equivalent.
    const size_t hint = static_cast<size_t>(ctx->batch_hint());
    size_t qi = 0;
    while (qi < q_set.size()) {
      const TupleId q = q_set[qi];
      bool moved = false;
      size_t consumed = 1;
      for (int attempt = 0; attempt < 64 && !moved; ++attempt) {
        const TupleId dest = find_dest(attempt, q);
        if (dest == kInvalidTuple || dest == s.Parent(J, q)) continue;
        std::vector<TupleId> group = {q};
        if (!move_ok(EvaluateGroupMove(table, col, group, dest))) {
          continue;
        }
        while (group.size() < hint && qi + group.size() < q_set.size()) {
          const TupleId qn = q_set[qi + group.size()];
          if (dest == s.Parent(J, qn)) break;
          group.push_back(qn);
          if (!move_ok(EvaluateGroupMove(table, col, group, dest))) {
            group.pop_back();
            break;
          }
        }
        const Modification mod = Modification::ReplaceValues(
            db_->table(table).name(), group, {col},
            {Value(static_cast<int64_t>(dest))});
        Status st = ctx->TryApply(mod);
        if (st.IsValidationFailed() && group.size() > 1) {
          // The grouped proposal was vetoed; retry the leading leaf
          // alone through the serial escalation path.
          st = ProposeMove(ctx, ci, J, q, dest, &veto_budget);
          if (st.ok()) moved = true;
          continue;
        }
        if (st.IsValidationFailed()) {
          if (veto_budget > 0) {
            --veto_budget;
            continue;
          }
          st = ctx->ForceApply(mod);
        }
        if (st.ok()) {
          moved = true;
          consumed = group.size();
        }
      }
      if (!moved) return false;
      qi += consumed;
    }
    return true;
  }

  for (const TupleId q : q_set) {
    bool moved = false;
    for (int attempt = 0; attempt < 64 && !moved; ++attempt) {
      const TupleId dest = find_dest(attempt, q);
      if (dest == kInvalidTuple || dest == s.Parent(J, q)) continue;
      if (!move_ok(EvaluateEdgeMove(table, col, q, dest))) continue;
      const Status st = ProposeMove(ctx, ci, J, q, dest, &veto_budget);
      if (st.ok()) moved = true;
    }
    if (!moved) return false;
  }
  return true;
}

bool LinearPropertyTool::IncreaseOnce(TweakContext* ctx, int ci, int J,
                                      int i, int protected_upto) {
  ChainStats& s = stats_[static_cast<size_t>(ci)];
  const ReferenceChain& chain = chains_[static_cast<size_t>(ci)];

  auto ancestors_reach_J = [&](TupleId y) {
    TupleId cur = y;
    for (int lev = i; lev >= 1; --lev) {
      cur = s.Parent(lev, cur);
      if (cur == kInvalidTuple || !s.Reaches(lev - 1, cur, J)) return false;
    }
    return true;
  };
  auto reaches_jm1_not_j = [&](TupleId cand) {
    return s.Reaches(i, cand, J - 1) && !s.Reaches(i, cand, J);
  };

  // Find y at level i to become a new member of S_{J,i}: it must reach
  // J-1 (so a leaf can be attached under it) and its ancestors must
  // already reach J (so no earlier entry moves).
  TupleId y = FindTuple(ctx, ci, i, [&](TupleId cand) {
    return reaches_jm1_not_j(cand) && (i == 0 || ancestors_reach_J(cand));
  });
  int veto_budget = max_attempts_;
  if (y == kInvalidTuple && i > 0) {
    // Isomorphic adjustment (Lemma 2 / Fig. 19): re-home a candidate y0
    // under a parent that already reaches J without changing any join
    // matrix, then proceed with it.
    const TupleId y0 = FindTuple(ctx, ci, i, [&](TupleId cand) {
      if (!reaches_jm1_not_j(cand)) return false;
      const TupleId p = s.Parent(i, cand);
      // The old parent must keep all its reaches through other kids.
      return p != kInvalidTuple &&
             s.Cnt(i - 1, p, s.MaxReach(i, cand)) >= 2;
    });
    if (y0 == kInvalidTuple) return false;
    const int tbl = chain.tables[static_cast<size_t>(i)];
    const int col = chain.fk_cols[static_cast<size_t>(i - 1)];
    bool adjusted = false;
    for (int attempt = 0; attempt < 96 && !adjusted; ++attempt) {
      const TupleId p_new = FindTuple(ctx, ci, i - 1, [&](TupleId cand) {
        return cand != s.Parent(i, y0) && s.Reaches(i - 1, cand, J) &&
               (i - 1 == 0 ||
                (s.Parent(i - 1, cand) != kInvalidTuple));
      });
      if (p_new == kInvalidTuple) break;
      // The adjustment must be isomorphic for every chain.
      const auto deltas = EvaluateEdgeMove(tbl, col, y0, p_new);
      bool iso = true;
      for (const ChainDelta& d : deltas) iso &= d.entries.empty();
      if (!iso) continue;
      if (ProposeMove(ctx, ci, i, y0, p_new, &veto_budget).ok()) {
        adjusted = true;
      }
    }
    if (!adjusted) return false;
    y = y0;
    if (!ancestors_reach_J(y)) return false;
  }
  if (y == kInvalidTuple) return false;

  // Attach point: a descendant of y at level J-1.
  const TupleId d = s.DescendantAt(i, y, J - 1);
  if (d == kInvalidTuple) return false;

  // Spare leaf at level J whose removal flips no level <= i (so fixed
  // entries of row J stay put; earlier rows are untouched by J-level
  // edges by construction).
  const int table = chain.tables[static_cast<size_t>(J)];
  const int col = chain.fk_cols[static_cast<size_t>(J - 1)];
  for (int attempt = 0; attempt < 64; ++attempt) {
    const TupleId q = FindTuple(ctx, ci, J, [&](TupleId cand) {
      TupleId cur = s.Parent(J, cand);
      if (cur == kInvalidTuple) return false;
      for (int lev = J - 1; lev >= 0; --lev) {
        if (s.Cnt(lev, cur, J) >= 2) return true;  // flip stops here
        if (lev <= i) return false;  // would flip a fixed/fixing level
        cur = s.Parent(lev, cur);
        if (cur == kInvalidTuple) return false;
      }
      return false;
    });
    if (q == kInvalidTuple) return false;
    if (MoveDamagesProtected(EvaluateEdgeMove(table, col, q, d), ci,
                             protected_upto, J, i)) {
      continue;
    }
    if (ProposeMove(ctx, ci, J, q, d, &veto_budget).ok()) return true;
  }
  return false;
}

Status LinearPropertyTool::Tweak(TweakContext* ctx) {
  if (!bound()) return Status::Invalid("linear: Tweak needs Bind");
  const int num_chains = static_cast<int>(chains_.size());
  for (int sweep = 0; sweep < 4; ++sweep) {
    bool any_moves = false;
    for (int ci = 0; ci < num_chains; ++ci) {
      ChainStats& s = stats_[static_cast<size_t>(ci)];
      const JoinMatrix& target = targets_[static_cast<size_t>(ci)];
      const int protected_upto = sweep == 0 ? ci : num_chains;
      const int k = s.k();
      for (int J = 1; J < k; ++J) {
        for (int i = 0; i < J; ++i) {
          const int64_t want = target.at(J, i);
          int64_t guard =
              4 * std::llabs(s.matrix().at(J, i) - want) + 32;
          int failures = 0;
          while (s.matrix().at(J, i) != want && guard-- > 0) {
            const bool progressed =
                s.matrix().at(J, i) > want
                    ? ReduceOnce(ctx, ci, J, i, protected_upto)
                    : IncreaseOnce(ctx, ci, J, i, protected_upto);
            if (progressed) {
              any_moves = true;
              failures = 0;
            } else if (++failures >= 16) {
              break;  // randomized retries exhausted for this entry
            }
          }
        }
      }
    }
    if (!any_moves || Error() < 1e-12) break;
  }
  return Status::OK();
}

Status LinearPropertyTool::SaveTarget(std::ostream* out) const {
  *out << "linear " << targets_.size() << "\n";
  for (const JoinMatrix& m : targets_) {
    *out << "chain " << m.k() << "\n";
    for (int j = 1; j < m.k(); ++j) {
      for (int i = 0; i < j; ++i) *out << m.at(j, i) << " ";
    }
    *out << "\n";
  }
  return Status::OK();
}

Status LinearPropertyTool::LoadTarget(std::istream* in) {
  std::string tag;
  size_t n = 0;
  if (!(*in >> tag >> n) || tag != "linear" || n != targets_.size()) {
    return Status::IoError("linear: bad target header");
  }
  std::vector<JoinMatrix> loaded;
  for (size_t ci = 0; ci < n; ++ci) {
    int k = 0;
    if (!(*in >> tag >> k) || tag != "chain" ||
        k != chains_[ci].length()) {
      return Status::IoError("linear: chain mismatch");
    }
    JoinMatrix m(k);
    for (int j = 1; j < k; ++j) {
      for (int i = 0; i < j; ++i) {
        int64_t v = 0;
        if (!(*in >> v)) return Status::IoError("linear: truncated");
        m.set(j, i, v);
      }
    }
    loaded.push_back(std::move(m));
  }
  targets_ = std::move(loaded);
  return Status::OK();
}

}  // namespace aspect
