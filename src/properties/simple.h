// Simple property tools (Sec. V: "Tools for simple properties, such as
// 'number of null values in a column' or 'number of tuples in each
// table', are easy to implement; they are already in the current
// version of ASPECT").
//
// ColumnFreqTool additionally powers the Theorem 6-8 experiments: when
// several tools enforce frequency distributions over the same column,
// the total error and the optimal tweaking order have closed forms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "relational/refcount.h"
#include "stats/freq_dist.h"

namespace aspect {

/// Enforces the value-frequency distribution of one int64 column.
/// Error is the L1 distance normalized by the table size (bounded by
/// 2), matching the frequency-difference measure of Theorem 6.
class ColumnFreqTool : public PropertyTool {
 public:
  ColumnFreqTool(const Schema& schema, std::string table,
                 std::string column, std::string tool_name = "");

  std::string name() const override { return name_; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr : std::make_unique<ColumnFreqTool>(*this);
  }

  /// Restricts the tool to tuple ids [lo, hi] of its column: every
  /// read, write, vote, and incremental-statistics update ignores rows
  /// outside the interval, and DeclaredScope() certifies the
  /// restriction with AddReadRange/AddWriteRange — which lets two
  /// instances split one column into disjoint halves and still tweak
  /// in the same shared-mode parallel group. Call before Bind.
  void SetRowRange(int64_t lo, int64_t hi);

  Status SetTargetFromDataset(const Database& ground_truth) override;
  /// User-input mode (also used by the Theorem 6-8 benches).
  Status SetTargetDistribution(FrequencyDistribution target);
  /// Statistical-extrapolation mode (Sec. III-C, mode (c)): fits the
  /// column's distribution across the snapshots and extrapolates to a
  /// dataset of `target_size` total tuples.
  Status SetTargetByExtrapolation(
      const std::vector<const Database*>& snapshots, double target_size);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics are one id-independent distribution: pointer swap.
  Status Rebase(Database* db) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: simulates the batch's cumulative frequency
  /// deltas, so values hit by several modifications of one batch are
  /// priced correctly (the default sum over singles is only exact for
  /// disjoint values). Honors `veto_cap`: each simulated step moves
  /// the total by at most 2/n, so the tail is skipped once the sum
  /// provably stays above the cap.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  const FrequencyDistribution& Current() const { return current_; }
  const FrequencyDistribution& Target() const { return target_; }

 private:
  FrequencyDistribution Extract(const Database& db) const;
  bool InRange(TupleId tid) const {
    return !has_range_ || (tid >= range_lo_ && tid <= range_hi_);
  }

  std::string name_;
  std::string table_;
  std::string column_;
  int table_index_ = -1;
  int col_index_ = -1;
  Database* db_ = nullptr;
  FrequencyDistribution current_{1};
  FrequencyDistribution target_{1};
  int max_attempts_ = 8;
  bool has_range_ = false;
  int64_t range_lo_ = 0;
  int64_t range_hi_ = 0;
};

/// Enforces the number of NULL values in one (non-FK) column.
class NullCountTool : public PropertyTool {
 public:
  NullCountTool(const Schema& schema, std::string table,
                std::string column);

  std::string name() const override { return name_; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr : std::make_unique<NullCountTool>(*this);
  }

  /// Row-interval restriction; see ColumnFreqTool::SetRowRange.
  void SetRowRange(int64_t lo, int64_t hi);

  Status SetTargetFromDataset(const Database& ground_truth) override;
  void SetTargetCount(int64_t nulls) { target_ = nulls; }
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics are one counter: pointer swap.
  Status Rebase(Database* db) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: one |delta| evaluation over the batch's
  /// summed null-count change instead of a (non-additive) per-mod sum.
  /// `veto_cap` is accepted but unused: the composite is priced once
  /// at the end, so there is no partial sum to exit from.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

 private:
  /// Null-count change `mod` would cause (0 for other tables/columns).
  int64_t DeltaOf(const Modification& mod) const;
  bool InRange(TupleId tid) const {
    return !has_range_ || (tid >= range_lo_ && tid <= range_hi_);
  }

  std::string name_;
  std::string table_;
  std::string column_;
  int table_index_ = -1;
  int col_index_ = -1;
  Database* db_ = nullptr;
  int64_t current_ = 0;
  int64_t target_ = 0;
  bool has_range_ = false;
  int64_t range_lo_ = 0;
  int64_t range_hi_ = 0;
};

/// Enforces min/max domain bounds of one numeric (int64) column - the
/// DBSynth-style metadata constraint from the paper's related work
/// (Sec. II). The property is the pair (min, max): the tweak clamps
/// out-of-range values and pins one tuple to each bound so the scaled
/// data's value domain matches the original's.
class DomainBoundsTool : public PropertyTool {
 public:
  DomainBoundsTool(const Schema& schema, std::string table,
                   std::string column);

  std::string name() const override { return name_; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr : std::make_unique<DomainBoundsTool>(*this);
  }

  /// Row-interval restriction; see ColumnFreqTool::SetRowRange.
  void SetRowRange(int64_t lo, int64_t hi);

  Status SetTargetFromDataset(const Database& ground_truth) override;
  void SetTargetBounds(int64_t min, int64_t max) {
    target_min_ = min;
    target_max_ = max;
  }
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }
  /// Statistics are three counters: pointer swap.
  Status Rebase(Database* db) override;

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Exact composite vote: accumulates the batch's out-of-range and
  /// at-bound deltas before the (non-additive) error difference.
  /// `veto_cap` is accepted but unused: the composite is priced once
  /// at the end, so there is no partial sum to exit from.
  double ValidationPenaltyBatch(std::span<const Modification> mods,
                                double veto_cap) const override;
  using PropertyTool::ValidationPenaltyBatch;
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

 private:
  /// Fraction of values outside [min, max] plus a unit charge when a
  /// bound value is absent entirely.
  double ErrorOf(int64_t out_of_range, bool has_min, bool has_max) const;
  void Recount();
  /// Accumulates `mod`'s deltas into the three counters.
  void AccumulateDeltas(const Modification& mod, const Table* t, int col,
                        int64_t* oor, int64_t* dmin, int64_t* dmax) const;
  bool InRange(TupleId tid) const {
    return !has_range_ || (tid >= range_lo_ && tid <= range_hi_);
  }

  std::string name_;
  std::string table_;
  std::string column_;
  int table_index_ = -1;
  int col_index_ = -1;
  Database* db_ = nullptr;
  int64_t target_min_ = 0;
  int64_t target_max_ = 0;
  bool has_range_ = false;
  int64_t range_lo_ = 0;
  int64_t range_hi_ = 0;
  // Current statistics (maintained incrementally).
  int64_t out_of_range_ = 0;
  int64_t at_min_ = 0;
  int64_t at_max_ = 0;
};

/// Enforces per-table tuple counts (the size-scaler contract); its
/// tweak inserts template tuples or deletes unreferenced ones.
class TupleCountTool : public PropertyTool {
 public:
  explicit TupleCountTool(const Schema& schema);

  std::string name() const override { return "tuple-count"; }

  /// Custom clone: the refcount cache is non-copyable bound state.
  std::unique_ptr<PropertyTool> Clone() const override;

  Status SetTargetFromDataset(const Database& ground_truth) override;
  Status SetTargetSizes(std::vector<int64_t> sizes);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  /// Whole-table row structure everywhere: the tweak inserts and
  /// deletes tuples in every table and its refcounts read all FKs.
  AccessScope DeclaredScope() const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

 private:
  Schema schema_;
  Database* db_ = nullptr;
  std::vector<int64_t> targets_;
  std::unique_ptr<RefCounter> refcount_;
};

}  // namespace aspect
