// JointDistributionTool: enforces the joint frequency distribution of
// several int64 columns of one table - the inter-column correlation
// property the paper's Target Generator discusses ("frequency
// distribution f where v is a vector of attribute values, e.g.
// (age, income, gender)", Sec. III-C), and the substrate for
// Theorem 7: two joint properties sharing a column can never both be
// exact beyond their shared-column agreement.
#pragma once

#include <string>
#include <vector>

#include "aspect/property_tool.h"
#include "aspect/tweak_context.h"
#include "stats/freq_dist.h"

namespace aspect {

class JointDistributionTool : public PropertyTool {
 public:
  JointDistributionTool(const Schema& schema, std::string table,
                        std::vector<std::string> columns,
                        std::string tool_name = "");

  std::string name() const override { return name_; }

  std::unique_ptr<PropertyTool> Clone() const override {
    return bound() ? nullptr
                   : std::make_unique<JointDistributionTool>(*this);
  }

  Status SetTargetFromDataset(const Database& ground_truth) override;
  Status SetTargetDistribution(FrequencyDistribution target);
  Status RepairTarget() override;
  Status CheckTargetFeasible() const override;

  Status Bind(Database* db) override;
  void Unbind() override;
  bool bound() const override { return db_ != nullptr; }

  double Error() const override;
  double ValidationPenalty(const Modification& mod) const override;
  Status Tweak(TweakContext* ctx) override;

  void OnApplied(const Modification& mod,
                 const std::vector<Value>& old_values,
                 TupleId new_tuple) override;

  const FrequencyDistribution& Current() const { return current_; }
  const FrequencyDistribution& Target() const { return target_; }

  /// Marginal of a stored distribution onto one of its dimensions
  /// (used by the Theorem 7 analysis and its tests).
  static FrequencyDistribution Marginal(const FrequencyDistribution& dist,
                                        int dim);

 private:
  using Key = FrequencyDistribution::Key;

  /// Reads a tuple's key from the database; empty when any cell is not
  /// a value.
  Key ReadKey(TupleId t) const;
  FrequencyDistribution Extract(const Database& db) const;

  std::string name_;
  std::string table_;
  std::vector<std::string> column_names_;
  std::vector<int> cols_;
  Database* db_ = nullptr;
  // Per-slot key cache (empty = uncounted), kept in sync by OnApplied.
  std::vector<Key> tuple_key_;
  // key -> tuples carrying it (for tweak victim selection).
  std::map<Key, std::vector<TupleId>> tuples_by_key_;
  FrequencyDistribution current_{1};
  FrequencyDistribution target_{1};
  int max_attempts_ = 16;
};

}  // namespace aspect
