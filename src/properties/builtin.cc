// Registers the tools shipped with this repository into the global
// ToolRegistry - the "repository of tweaking tools" the paper's
// collaborative model is built around.
#include "aspect/registry.h"
#include "properties/coappear.h"
#include "properties/degree.h"
#include "properties/linear.h"
#include "properties/pairwise.h"
#include "properties/simple.h"

namespace aspect {

void RegisterBuiltinTools() {
  ToolRegistry& registry = ToolRegistry::Global();
  registry.Register("linear", [](const Schema& schema) {
    return std::make_unique<LinearPropertyTool>(schema);
  });
  registry.Register("coappear", [](const Schema& schema) {
    return std::make_unique<CoappearPropertyTool>(schema);
  });
  registry.Register("pairwise", [](const Schema& schema) {
    return std::make_unique<PairwisePropertyTool>(schema);
  });
  registry.Register("degree", [](const Schema& schema) {
    return std::make_unique<DegreeDistributionTool>(schema);
  });
  registry.Register("tuple-count", [](const Schema& schema) {
    return std::make_unique<TupleCountTool>(schema);
  });
}

}  // namespace aspect
